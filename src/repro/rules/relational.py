"""The relational equality rules R_EQ (Fig. 3 of the paper).

The seven identities of Fig. 3 are realised as e-graph rewrite rules over
the n-ary RA operators.  Because ``*`` and ``+`` are stored as flattened,
order-canonical n-ary e-nodes, the associativity/commutativity identities
(rules 6 and 7) are structural and need no rewrite; the remaining identities
become the rules below.  Where the paper's binary identity generalises to an
n-ary regrouping (picking which factor distributes, which sub-multiset is
factored out, which index is eliminated first), the generalisation is what
makes the rule *expansive* in the paper's sense — these rules are marked
``expansive=True`` and are the ones the sampling scheduler throttles.

==============================  ===========================================
rule                            identity
==============================  ===========================================
``distribute``                  A * (B + C) = A*B + A*C           (rule 1 →)
``factor``                      A*B + A*C = A * (B + C)           (rule 1 ←)
``combine-addends``             A + A = 2 * A            (rule 1 ← special)
``push-sum-into-add``           Σ_i (A + B) = Σ_i A + Σ_i B       (rule 2 →)
``pull-add-out-of-sum``         Σ_i A + Σ_i B = Σ_i (A + B)       (rule 2 ←)
``pull-factor-out-of-sum``      Σ_i (A * B) = A * Σ_i B, i ∉ A    (rule 3 ←)
``push-factor-into-sum``        A * Σ_i B = Σ_i (A * B), i ∉ A    (rule 3 →)
``merge-nested-sums``           Σ_i Σ_j A = Σ_{i,j} A             (rule 4)
``eliminate-unused-index``      Σ_i A = A * dim(i), i ∉ Attr(A)   (rule 5)
``drop-identities``             A * 1 = A,  A + 0 = A       (housekeeping)
==============================  ===========================================
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.egraph.enode import ENode, OP_ADD, OP_JOIN, OP_LIT, OP_SUM, OP_VAR
from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Match, Rule
from repro.ra.attrs import Attr


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def mk_lit(egraph: EGraph, value: float) -> int:
    return egraph.add(ENode(OP_LIT, float(value), ()))


def mk_join(egraph: EGraph, class_ids: Sequence[int]) -> int:
    """Build a join of e-classes; a single argument is returned as-is."""
    ids = [egraph.find(c) for c in class_ids]
    if not ids:
        return mk_lit(egraph, 1.0)
    if len(ids) == 1:
        return ids[0]
    return egraph.add(ENode(OP_JOIN, None, tuple(sorted(ids))))


def mk_add(egraph: EGraph, class_ids: Sequence[int]) -> int:
    """Build a union of e-classes; a single argument is returned as-is."""
    ids = [egraph.find(c) for c in class_ids]
    if not ids:
        return mk_lit(egraph, 0.0)
    if len(ids) == 1:
        return ids[0]
    return egraph.add(ENode(OP_ADD, None, tuple(sorted(ids))))


def mk_sum(egraph: EGraph, indices: Iterable[Attr], child: int) -> int:
    """Build an aggregation; an empty index set is the child itself."""
    index_set = frozenset(indices)
    if not index_set:
        return egraph.find(child)
    child = egraph.find(child)
    return egraph.add(ENode(OP_SUM, index_set, (child,)))


def _each_enode(egraph: EGraph, op: str) -> List[Tuple[int, ENode]]:
    """All (class_id, node) pairs for nodes with the given operator."""
    result = []
    for class_id in egraph.class_ids():
        for node in egraph.nodes(class_id):
            if node.op == op:
                result.append((class_id, node))
    return result


def _schema_names(egraph: EGraph, class_id: int) -> FrozenSet[str]:
    return egraph.data(class_id).schema_names


def _bound_names(egraph: EGraph, class_id: int) -> FrozenSet[str]:
    return egraph.data(class_id).bound


# ---------------------------------------------------------------------------
# Rules 6/7: associativity — flatten nested n-ary joins and unions
# ---------------------------------------------------------------------------


class Flatten(Rule):
    """``A * (B * C) = *(A, B, C)`` and ``A + (B + C) = +(A, B, C)``.

    Commutativity is structural (children of ``*``/``+`` are stored sorted),
    but associativity still needs a rewrite: other rules build joins whose
    arguments are e-classes that themselves contain joins, and rules such as
    ``pull-factor-out-of-sum`` or ``factor`` need the flattened view to see
    all the factors at once.
    """

    name = "flatten"

    def __init__(self, op: str) -> None:
        self.op = op
        self.name = f"flatten-{'join' if op == OP_JOIN else 'add'}"

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for class_id, node in _each_enode(egraph, self.op):
            for position, arg in enumerate(node.children):
                arg = egraph.find(arg)
                if arg == egraph.find(class_id):
                    continue  # avoid self-flattening loops
                inner_nodes = [n for n in egraph.nodes(arg) if n.op == self.op]
                others = list(node.children[:position]) + list(node.children[position + 1:])
                for inner in inner_nodes:
                    matches.append(
                        Match(
                            rule_name=self.name,
                            key=(class_id, position, repr(inner)),
                            apply=self._applier(class_id, others, inner),
                        )
                    )
        return matches

    def _applier(self, class_id: int, others: List[int], inner: ENode):
        op = self.op

        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            children = others + list(inner.children)
            if op == OP_JOIN:
                replacement = mk_join(egraph, children)
            else:
                replacement = mk_add(egraph, children)
            egraph.merge(replacement, class_id)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 1 forward: distribute join over union
# ---------------------------------------------------------------------------


class Distribute(Rule):
    """``A * (B + C) = A*B + A*C`` — distribute a join over a union child."""

    name = "distribute"
    expansive = True

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for join_class, join_node in _each_enode(egraph, OP_JOIN):
            for position, arg in enumerate(join_node.children):
                arg = egraph.find(arg)
                add_nodes = [n for n in egraph.nodes(arg) if n.op == OP_ADD]
                others = list(join_node.children[:position]) + list(join_node.children[position + 1:])
                for add_node in add_nodes:
                    matches.append(
                        Match(
                            rule_name=self.name,
                            key=(join_class, position, repr(add_node)),
                            apply=self._applier(join_class, others, add_node),
                        )
                    )
        return matches

    @staticmethod
    def _applier(join_class: int, others: List[int], add_node: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            terms = [mk_join(egraph, others + [addend]) for addend in add_node.children]
            distributed = mk_add(egraph, terms)
            egraph.merge(distributed, join_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 1 backward: factor a common sub-multiset out of a union
# ---------------------------------------------------------------------------


class Factor(Rule):
    """``A*B + A*C = A * (B + C)`` — factor a common factor out of two addends."""

    name = "factor"
    expansive = True

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for add_class, add_node in _each_enode(egraph, OP_ADD):
            factorizations = self._factor_views(egraph, add_node)
            for i in range(len(add_node.children)):
                for j in range(i + 1, len(add_node.children)):
                    for fi in factorizations[i]:
                        for fj in factorizations[j]:
                            common = _multiset_intersection(fi, fj)
                            if not common:
                                continue
                            matches.append(
                                Match(
                                    rule_name=self.name,
                                    key=(add_class, i, j, tuple(sorted(common.elements()))),
                                    apply=self._applier(add_class, add_node, i, j, fi, fj, common),
                                )
                            )
        return matches

    @staticmethod
    def _factor_views(egraph: EGraph, add_node: ENode) -> List[List[Counter]]:
        """For each addend, the multisets of join factors it can be seen as."""
        views: List[List[Counter]] = []
        for child in add_node.children:
            child = egraph.find(child)
            child_views = [Counter({child: 1})]
            for node in egraph.nodes(child):
                if node.op == OP_JOIN:
                    child_views.append(Counter(egraph.find(c) for c in node.children))
            views.append(child_views)
        return views

    @staticmethod
    def _applier(add_class: int, add_node: ENode, i: int, j: int, fi: Counter, fj: Counter, common: Counter):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            rest_i = _multiset_difference(fi, common)
            rest_j = _multiset_difference(fj, common)
            term_i = mk_join(egraph, list(rest_i.elements())) if rest_i else mk_lit(egraph, 1.0)
            term_j = mk_join(egraph, list(rest_j.elements())) if rest_j else mk_lit(egraph, 1.0)
            # The union requires schema-compatible operands: pad the narrower
            # remainder with all-ones tensors over the attributes only the
            # other one carries (e.g. P*X + (-1)*P*P*X factors into
            # P * X * (ones + (-1)*P)).
            term_i, term_j = _pad_to_common_schema(egraph, term_i, term_j)
            if egraph.data(term_i).schema_names != egraph.data(term_j).schema_names:
                return False
            inner_sum = mk_add(egraph, [term_i, term_j])
            factored = mk_join(egraph, list(common.elements()) + [inner_sum])
            other_addends = [
                c for pos, c in enumerate(add_node.children) if pos not in (i, j)
            ]
            replacement = mk_add(egraph, other_addends + [factored])
            egraph.merge(replacement, add_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


def _pad_to_common_schema(egraph: EGraph, term_i: int, term_j: int) -> Tuple[int, int]:
    """Pad two quotient terms with all-ones tensors up to a shared schema."""
    from repro.translate.lower import ONES_PREFIX

    schema_i = egraph.data(term_i).schema
    schema_j = egraph.data(term_j).schema
    names_i = {attr.name for attr in schema_i}
    names_j = {attr.name for attr in schema_j}

    def pad(term: int, own_names, other_schema) -> int:
        missing = [attr for attr in other_schema if attr.name not in own_names]
        if not missing:
            return term
        factors = [
            egraph.add(ENode(OP_VAR, (f"{ONES_PREFIX}{attr.name.split('.')[0]}", (attr,)), ()))
            for attr in sorted(missing, key=lambda a: a.name)
        ]
        return mk_join(egraph, factors + [term])

    return pad(term_i, names_i, schema_j), pad(term_j, names_j, schema_i)


def _multiset_intersection(a: Counter, b: Counter) -> Counter:
    result = Counter()
    for key in a:
        if key in b:
            result[key] = min(a[key], b[key])
    return +result


def _multiset_difference(a: Counter, b: Counter) -> Counter:
    result = Counter(a)
    result.subtract(b)
    return +result


# ---------------------------------------------------------------------------
# Rule 1 backward, special case: combine equal addends into a coefficient
# ---------------------------------------------------------------------------


class CombineAddends(Rule):
    """``A + A = 2 * A`` — merge repeated addends into a scalar coefficient."""

    name = "combine-addends"

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for add_class, add_node in _each_enode(egraph, OP_ADD):
            counts = Counter(egraph.find(c) for c in add_node.children)
            if any(count >= 2 for count in counts.values()):
                matches.append(
                    Match(
                        rule_name=self.name,
                        key=(add_class, repr(add_node)),
                        apply=self._applier(add_class, counts),
                    )
                )
        return matches

    @staticmethod
    def _applier(add_class: int, counts: Counter):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            new_children: List[int] = []
            for child, count in counts.items():
                if count == 1:
                    new_children.append(child)
                else:
                    coefficient = mk_lit(egraph, float(count))
                    new_children.append(mk_join(egraph, [coefficient, child]))
            replacement = mk_add(egraph, new_children)
            egraph.merge(replacement, add_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 2: aggregation distributes over union
# ---------------------------------------------------------------------------


class PushSumIntoAdd(Rule):
    """``Σ_i (A + B) = Σ_i A + Σ_i B``."""

    name = "push-sum-into-add"

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for sum_class, sum_node in _each_enode(egraph, OP_SUM):
            child = egraph.find(sum_node.children[0])
            for add_node in egraph.nodes(child):
                if add_node.op != OP_ADD:
                    continue
                matches.append(
                    Match(
                        rule_name=self.name,
                        key=(sum_class, repr(add_node)),
                        apply=self._applier(sum_class, sum_node.payload, add_node),
                    )
                )
        return matches

    @staticmethod
    def _applier(sum_class: int, indices: FrozenSet[Attr], add_node: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            pushed = [mk_sum(egraph, indices, child) for child in add_node.children]
            replacement = mk_add(egraph, pushed)
            egraph.merge(replacement, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


class PullAddOutOfSum(Rule):
    """``Σ_i A + Σ_i B = Σ_i (A + B)`` when every addend aggregates the same indices."""

    name = "pull-add-out-of-sum"

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for add_class, add_node in _each_enode(egraph, OP_ADD):
            sum_views: List[List[ENode]] = []
            for child in add_node.children:
                child = egraph.find(child)
                sums = [n for n in egraph.nodes(child) if n.op == OP_SUM]
                sum_views.append(sums)
            if not all(sum_views):
                continue
            # All addends must agree on the aggregated index names.
            index_sets = [
                {frozenset(a.name for a in node.payload) for node in sums}
                for sums in sum_views
            ]
            shared = set.intersection(*index_sets)
            for names in sorted(shared, key=sorted):
                matches.append(
                    Match(
                        rule_name=self.name,
                        key=(add_class, tuple(sorted(names))),
                        apply=self._applier(add_class, add_node, names, sum_views),
                    )
                )
        return matches

    @staticmethod
    def _applier(add_class: int, add_node: ENode, names: FrozenSet[str], sum_views: List[List[ENode]]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            inner_children: List[int] = []
            indices: Optional[FrozenSet[Attr]] = None
            for sums in sum_views:
                chosen = None
                for node in sums:
                    if frozenset(a.name for a in node.payload) == names:
                        chosen = node
                        break
                if chosen is None:
                    return False
                indices = chosen.payload if indices is None else indices
                inner_children.append(egraph.find(chosen.children[0]))
            inner_add = mk_add(egraph, inner_children)
            replacement = mk_sum(egraph, indices, inner_add)
            egraph.merge(replacement, add_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 3: aggregation commutes with join factors that do not mention the index
# ---------------------------------------------------------------------------


class PullFactorOutOfSum(Rule):
    """``Σ_i (A * B) = A * Σ_i B`` when i ∉ Attr(A).

    Implemented as a single variable-elimination step: pick one aggregated
    index ``s``, split the join into the factors that mention ``s`` and those
    that do not, aggregate ``s`` over the former only.  Repeated application
    yields the fully factorised sum-product form (e.g.
    ``Σ_{i,j,k} W(i,j) H(j,k)`` becomes
    ``Σ_j (Σ_i W(i,j)) * (Σ_k H(j,k))``, the colSums/rowSums plan of PNMF).
    """

    name = "pull-factor-out-of-sum"
    expansive = True

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for sum_class, sum_node in _each_enode(egraph, OP_SUM):
            indices: FrozenSet[Attr] = sum_node.payload
            child = egraph.find(sum_node.children[0])
            for join_node in egraph.nodes(child):
                if join_node.op != OP_JOIN:
                    continue
                for index in sorted(indices, key=lambda a: a.name):
                    inside = [
                        c for c in join_node.children if index.name in _schema_names(egraph, c)
                    ]
                    outside = [
                        c for c in join_node.children if index.name not in _schema_names(egraph, c)
                    ]
                    if not inside or not outside:
                        continue
                    matches.append(
                        Match(
                            rule_name=self.name,
                            key=(sum_class, index.name, repr(join_node)),
                            apply=self._applier(sum_class, indices, index, inside, outside),
                        )
                    )
        return matches

    @staticmethod
    def _applier(sum_class: int, indices: FrozenSet[Attr], index: Attr, inside: List[int], outside: List[int]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            inner = mk_sum(egraph, frozenset({index}), mk_join(egraph, inside))
            replacement = mk_sum(
                egraph,
                indices - {index},
                mk_join(egraph, outside + [inner]),
            )
            egraph.merge(replacement, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


class PushFactorIntoSum(Rule):
    """``A * Σ_i B = Σ_i (A * B)`` when i is mentioned nowhere in A.

    The guard requires the pushed index names to be absent from both the free
    schema and the bound-index over-approximation of every other factor,
    which keeps the rewrite capture-avoiding without a renaming step.
    """

    name = "push-factor-into-sum"
    expansive = True

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for join_class, join_node in _each_enode(egraph, OP_JOIN):
            for position, arg in enumerate(join_node.children):
                arg = egraph.find(arg)
                others = list(join_node.children[:position]) + list(join_node.children[position + 1:])
                for sum_node in egraph.nodes(arg):
                    if sum_node.op != OP_SUM:
                        continue
                    names = frozenset(a.name for a in sum_node.payload)
                    blocked = False
                    for other in others:
                        other_names = _schema_names(egraph, other) | _bound_names(egraph, other)
                        if names & other_names:
                            blocked = True
                            break
                    if blocked:
                        continue
                    matches.append(
                        Match(
                            rule_name=self.name,
                            key=(join_class, position, repr(sum_node)),
                            apply=self._applier(join_class, others, sum_node),
                        )
                    )
        return matches

    @staticmethod
    def _applier(join_class: int, others: List[int], sum_node: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            inner = mk_join(egraph, others + [egraph.find(sum_node.children[0])])
            replacement = mk_sum(egraph, sum_node.payload, inner)
            egraph.merge(replacement, join_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 4: nested aggregations merge
# ---------------------------------------------------------------------------


class MergeNestedSums(Rule):
    """``Σ_i Σ_j A = Σ_{i,j} A``."""

    name = "merge-nested-sums"

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for sum_class, sum_node in _each_enode(egraph, OP_SUM):
            child = egraph.find(sum_node.children[0])
            for inner in egraph.nodes(child):
                if inner.op != OP_SUM:
                    continue
                outer_names = {a.name for a in sum_node.payload}
                inner_names = {a.name for a in inner.payload}
                if outer_names & inner_names:
                    continue  # would shadow; never produced by the translator
                matches.append(
                    Match(
                        rule_name=self.name,
                        key=(sum_class, repr(inner)),
                        apply=self._applier(sum_class, sum_node.payload, inner),
                    )
                )
        return matches

    @staticmethod
    def _applier(sum_class: int, outer_indices: FrozenSet[Attr], inner: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            merged = mk_sum(
                egraph,
                frozenset(outer_indices) | frozenset(inner.payload),
                egraph.find(inner.children[0]),
            )
            egraph.merge(merged, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 5: aggregating an index the child does not mention
# ---------------------------------------------------------------------------


class EliminateUnusedIndex(Rule):
    """``Σ_i A = A * dim(i)`` when i ∉ Attr(A)."""

    name = "eliminate-unused-index"

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for sum_class, sum_node in _each_enode(egraph, OP_SUM):
            child = egraph.find(sum_node.children[0])
            child_schema = _schema_names(egraph, child)
            unused = [a for a in sum_node.payload if a.name not in child_schema]
            if not unused:
                continue
            matches.append(
                Match(
                    rule_name=self.name,
                    key=(sum_class, repr(sum_node)),
                    apply=self._applier(sum_class, sum_node, unused),
                )
            )
        return matches

    @staticmethod
    def _applier(sum_class: int, sum_node: ENode, unused: List[Attr]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            factor = 1.0
            for attr in unused:
                factor *= attr.size if attr.size is not None else 1
            remaining = frozenset(sum_node.payload) - frozenset(unused)
            inner = mk_sum(egraph, remaining, egraph.find(sum_node.children[0]))
            replacement = mk_join(egraph, [mk_lit(egraph, factor), inner])
            egraph.merge(replacement, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Housekeeping: identity elements
# ---------------------------------------------------------------------------


class DropIdentities(Rule):
    """``A * 1 = A`` and ``A + 0 = A`` for scalar identity classes.

    Constant folding (the class invariant) discovers that a class is the
    scalar 1 or 0; this rule then removes it from joins and unions, which
    keeps the extraction problem small.
    """

    name = "drop-identities"

    def search(self, egraph: EGraph) -> List[Match]:
        matches: List[Match] = []
        for class_id in egraph.class_ids():
            for node in egraph.nodes(class_id):
                if node.op not in (OP_JOIN, OP_ADD):
                    continue
                identity = 1.0 if node.op == OP_JOIN else 0.0
                removable = [
                    c
                    for c in node.children
                    if egraph.data(c).constant == identity and not egraph.data(c).schema
                ]
                if not removable or len(removable) == len(node.children):
                    continue
                matches.append(
                    Match(
                        rule_name=self.name,
                        key=(class_id, repr(node)),
                        apply=self._applier(class_id, node, identity),
                    )
                )
        return matches

    @staticmethod
    def _applier(class_id: int, node: ENode, identity: float):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            keep = [
                c
                for c in node.children
                if not (egraph.data(c).constant == identity and not egraph.data(c).schema)
            ]
            if not keep:
                return False
            if node.op == OP_JOIN:
                replacement = mk_join(egraph, keep)
            else:
                replacement = mk_add(egraph, keep)
            egraph.merge(replacement, class_id)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


class AbsorbOnes(Rule):
    """``ones(i) * A = A`` whenever ``i`` is already in A's schema.

    The lowering pads broadcast additions with synthetic all-ones tensors
    (named ``__ones__<dim>``) so that unions stay schema-compatible.  Inside
    a join such a tensor is the multiplicative identity along an axis the
    other factors already carry, so it can be dropped — which is what lets
    saturation prove e.g. ``X - Y*X = (1 - Y)*X`` where the literal ``1``
    was padded up to a matrix.
    """

    name = "absorb-ones"

    def search(self, egraph: EGraph) -> List[Match]:
        from repro.translate.lower import ONES_PREFIX

        matches: List[Match] = []
        for class_id, node in _each_enode(egraph, OP_JOIN):
            for position, arg in enumerate(node.children):
                arg = egraph.find(arg)
                ones_nodes = [
                    n
                    for n in egraph.nodes(arg)
                    if n.op == OP_VAR and n.payload[0].startswith(ONES_PREFIX)
                ]
                if not ones_nodes:
                    continue
                others = list(node.children[:position]) + list(node.children[position + 1:])
                if not others:
                    continue
                ones_schema = _schema_names(egraph, arg)
                others_schema: FrozenSet[str] = frozenset()
                for other in others:
                    others_schema = others_schema | _schema_names(egraph, other)
                if not ones_schema <= others_schema:
                    continue
                matches.append(
                    Match(
                        rule_name=self.name,
                        key=(class_id, position),
                        apply=self._applier(class_id, others),
                    )
                )
        return matches

    @staticmethod
    def _applier(class_id: int, others: List[int]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            replacement = mk_join(egraph, others)
            egraph.merge(replacement, class_id)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


def relational_rules(include_expansive: bool = True) -> List[Rule]:
    """The full R_EQ rule set in a deterministic order."""
    rules: List[Rule] = [
        Flatten(OP_JOIN),
        Flatten(OP_ADD),
        DropIdentities(),
        AbsorbOnes(),
        CombineAddends(),
        MergeNestedSums(),
        EliminateUnusedIndex(),
        PushSumIntoAdd(),
        PullAddOutOfSum(),
        PullFactorOutOfSum(),
    ]
    if include_expansive:
        rules.extend([Distribute(), Factor(), PushFactorIntoSum()])
    return rules
