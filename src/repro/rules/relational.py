"""The relational equality rules R_EQ (Fig. 3 of the paper).

The seven identities of Fig. 3 are realised as e-graph rewrite rules over
the n-ary RA operators.  Because ``*`` and ``+`` are stored as flattened,
order-canonical n-ary e-nodes, the associativity/commutativity identities
(rules 6 and 7) are structural and need no rewrite; the remaining identities
become the rules below.  Where the paper's binary identity generalises to an
n-ary regrouping (picking which factor distributes, which sub-multiset is
factored out, which index is eliminated first), the generalisation is what
makes the rule *expansive* in the paper's sense — these rules are marked
``expansive=True`` and are the ones the sampling scheduler throttles.

Searching is driven by the e-graph's **operator index**: a rule anchored on
``sum`` nodes enumerates ``egraph.classes_with_op("sum")`` and reads the
per-class operator buckets instead of scanning every class and
re-canonicalising its nodes.  When the runner provides a ``dirty`` set of
changed classes, :func:`_each_enode` further restricts the enumeration to
matches whose root class or child classes changed — the rules here pattern-
match on a root e-node plus its immediate children (guards only consult
analysis data, whose improvements also count as touches), so that
neighbourhood test is exact.  ``factor`` and ``pull-add-out-of-sum``
cross-correlate *all* addends of a union and keep ``incremental = False``.
Constructing rules with ``relational_rules(indexed=False)`` restores the
full-scan searcher, which the e-matching benchmark uses as its baseline.

==============================  ===========================================
rule                            identity
==============================  ===========================================
``distribute``                  A * (B + C) = A*B + A*C           (rule 1 →)
``factor``                      A*B + A*C = A * (B + C)           (rule 1 ←)
``combine-addends``             A + A = 2 * A            (rule 1 ← special)
``push-sum-into-add``           Σ_i (A + B) = Σ_i A + Σ_i B       (rule 2 →)
``pull-add-out-of-sum``         Σ_i A + Σ_i B = Σ_i (A + B)       (rule 2 ←)
``pull-factor-out-of-sum``      Σ_i (A * B) = A * Σ_i B, i ∉ A    (rule 3 ←)
``push-factor-into-sum``        A * Σ_i B = Σ_i (A * B), i ∉ A    (rule 3 →)
``merge-nested-sums``           Σ_i Σ_j A = Σ_{i,j} A             (rule 4)
``eliminate-unused-index``      Σ_i A = A * dim(i), i ∉ Attr(A)   (rule 5)
``drop-identities``             A * 1 = A,  A + 0 = A       (housekeeping)
==============================  ===========================================
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.egraph.enode import ENode, OP_ADD, OP_JOIN, OP_LIT, OP_SUM, OP_VAR
from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Match, Rule
from repro.ra.attrs import Attr


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def mk_lit(egraph: EGraph, value: float) -> int:
    return egraph.add(ENode(OP_LIT, float(value), ()))


def mk_join(egraph: EGraph, class_ids: Sequence[int]) -> int:
    """Build a join of e-classes; a single argument is returned as-is."""
    ids = [egraph.find(c) for c in class_ids]
    if not ids:
        return mk_lit(egraph, 1.0)
    if len(ids) == 1:
        return ids[0]
    return egraph.add(ENode(OP_JOIN, None, tuple(sorted(ids))))


def mk_add(egraph: EGraph, class_ids: Sequence[int]) -> int:
    """Build a union of e-classes; a single argument is returned as-is."""
    ids = [egraph.find(c) for c in class_ids]
    if not ids:
        return mk_lit(egraph, 0.0)
    if len(ids) == 1:
        return ids[0]
    return egraph.add(ENode(OP_ADD, None, tuple(sorted(ids))))


def mk_sum(egraph: EGraph, indices: Iterable[Attr], child: int) -> int:
    """Build an aggregation; an empty index set is the child itself."""
    index_set = frozenset(indices)
    if not index_set:
        return egraph.find(child)
    child = egraph.find(child)
    return egraph.add(ENode(OP_SUM, index_set, (child,)))


def _each_enode(
    egraph: EGraph,
    op: str,
    dirty: Optional[FrozenSet[int]] = None,
    use_index: bool = True,
) -> List[Tuple[int, ENode]]:
    """All (class_id, node) pairs for nodes with the given operator.

    With ``use_index`` the enumeration reads the persistent operator index;
    a non-``None`` ``dirty`` set restricts it to nodes whose own class or
    whose immediate child classes changed since the caller last searched.
    ``use_index=False`` reproduces the original full scan (the benchmark
    baseline).
    """
    result: List[Tuple[int, ENode]] = []
    if not use_index:
        for class_id in egraph.class_ids():
            for node in egraph.legacy_nodes(class_id):
                if node.op == op:
                    result.append((class_id, node))
        return result
    if dirty is None:
        for class_id in egraph.classes_with_op(op):
            for node in egraph.nodes_by_op(class_id, op):
                result.append((class_id, node))
        return result
    for class_id in egraph.classes_with_op(op):
        if class_id in dirty:
            for node in egraph.nodes_by_op(class_id, op):
                result.append((class_id, node))
        else:
            for node in egraph.nodes_by_op(class_id, op):
                if any(child in dirty for child in node.children):
                    result.append((class_id, node))
    return result


def _class_nodes(egraph: EGraph, class_id: int, op: str, use_index: bool = True) -> List[ENode]:
    """The ``op`` e-nodes of one class, via the index or the legacy scan."""
    if use_index:
        return egraph.nodes_by_op(class_id, op)
    return [node for node in egraph.legacy_nodes(class_id) if node.op == op]


def _schema_names(egraph: EGraph, class_id: int) -> FrozenSet[str]:
    return egraph.data(class_id).schema_names


def _bound_names(egraph: EGraph, class_id: int) -> FrozenSet[str]:
    return egraph.data(class_id).bound


# ---------------------------------------------------------------------------
# Rules 6/7: associativity — flatten nested n-ary joins and unions
# ---------------------------------------------------------------------------


class Flatten(Rule):
    """``A * (B * C) = *(A, B, C)`` and ``A + (B + C) = +(A, B, C)``.

    Commutativity is structural (children of ``*``/``+`` are stored sorted),
    but associativity still needs a rewrite: other rules build joins whose
    arguments are e-classes that themselves contain joins, and rules such as
    ``pull-factor-out-of-sum`` or ``factor`` need the flattened view to see
    all the factors at once.

    Soundness:
        rings: any-semiring
        needs: associativity, commutativity
    """

    name = "flatten"

    def __init__(self, op: str) -> None:
        self.op = op
        self.name = f"flatten-{'join' if op == OP_JOIN else 'add'}"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for class_id, node in _each_enode(egraph, self.op, dirty, self.use_index):
            for position, arg in enumerate(node.children):
                arg = egraph.find(arg)
                if arg == egraph.find(class_id):
                    continue  # avoid self-flattening loops
                inner_nodes = _class_nodes(egraph, arg, self.op, self.use_index)
                others = list(node.children[:position]) + list(node.children[position + 1:])
                for inner in inner_nodes:
                    matches.append(
                        Match(
                            rule_name=self.name,
                            root=class_id,
                            key=(class_id, node.sort_key, position, inner.sort_key),
                            apply=self._applier(class_id, others, inner),
                        )
                    )
        return matches

    def _applier(self, class_id: int, others: List[int], inner: ENode):
        op = self.op

        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            children = others + list(inner.children)
            if op == OP_JOIN:
                replacement = mk_join(egraph, children)
            else:
                replacement = mk_add(egraph, children)
            egraph.merge(replacement, class_id)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 1 forward: distribute join over union
# ---------------------------------------------------------------------------


class Distribute(Rule):
    """``A * (B + C) = A*B + A*C`` — distribute a join over a union child.

    Soundness:
        rings: any-semiring
        needs: distributivity, commutativity
    """

    name = "distribute"
    expansive = True

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for join_class, join_node in _each_enode(egraph, OP_JOIN, dirty, self.use_index):
            for position, arg in enumerate(join_node.children):
                arg = egraph.find(arg)
                add_nodes = _class_nodes(egraph, arg, OP_ADD, self.use_index)
                others = list(join_node.children[:position]) + list(join_node.children[position + 1:])
                for add_node in add_nodes:
                    matches.append(
                        Match(
                            rule_name=self.name,
                            root=join_class,
                            key=(join_class, join_node.sort_key, position, add_node.sort_key),
                            apply=self._applier(join_class, others, add_node),
                        )
                    )
        return matches

    @staticmethod
    def _applier(join_class: int, others: List[int], add_node: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            terms = [mk_join(egraph, others + [addend]) for addend in add_node.children]
            distributed = mk_add(egraph, terms)
            egraph.merge(distributed, join_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 1 backward: factor a common sub-multiset out of a union
# ---------------------------------------------------------------------------


class Factor(Rule):
    """``A*B + A*C = A * (B + C)`` — factor a common factor out of two addends.

    Factoring cross-correlates every pair of addends (and every join view of
    each addend), so a changed-neighbourhood test cannot bound its matches;
    the rule opts out of incremental search and always scans its anchor op.

    Soundness:
        rings: any-semiring
        needs: distributivity, commutativity
    """

    name = "factor"
    expansive = True
    incremental = False

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        #: join views per addend class, shared across every add node searched
        views_cache: Dict[int, List[Tuple[Counter, FrozenSet[int], Tuple[int, ...]]]] = {}
        for add_class, add_node in _each_enode(egraph, OP_ADD, None, self.use_index):
            factorizations = self._factor_views(egraph, add_node, self.use_index, views_cache)
            for i in range(len(add_node.children)):
                for j in range(i + 1, len(add_node.children)):
                    for fi, keys_i, elements_i in factorizations[i]:
                        for fj, keys_j, elements_j in factorizations[j]:
                            # Every multiplicity is >= 1, so overlapping key
                            # sets are exactly a non-empty intersection.
                            if keys_i.isdisjoint(keys_j):
                                continue
                            common = _multiset_intersection(fi, fj)
                            # Key the views by content, not enumeration
                            # position, so scheduling does not depend on the
                            # search backend's iteration order.
                            matches.append(
                                Match(
                                    rule_name=self.name,
                                    root=add_class,
                                    key=(add_class, add_node.sort_key, i, j, elements_i, elements_j),
                                    apply=self._applier(add_class, add_node, i, j, fi, fj, common),
                                )
                            )
        return matches

    @staticmethod
    def _factor_views(
        egraph: EGraph,
        add_node: ENode,
        use_index: bool = True,
        cache: Optional[Dict[int, List[Tuple[Counter, FrozenSet[int], Tuple[int, ...]]]]] = None,
    ) -> List[List[Tuple[Counter, FrozenSet[int], Tuple[int, ...]]]]:
        """For each addend, the multisets of join factors it can be seen as.

        Each view is pre-packaged as ``(counter, key set, sorted elements)``
        so the pairwise loop can disjointness-test and build match keys
        without recomputing them per pair; the per-class cache is shared
        across all add nodes of one search.
        """
        views: List[List[Tuple[Counter, FrozenSet[int], Tuple[int, ...]]]] = []
        for child in add_node.children:
            child = egraph.find(child)
            child_views = cache.get(child) if cache is not None else None
            if child_views is None:
                counters = [Counter({child: 1})]
                for node in _class_nodes(egraph, child, OP_JOIN, use_index):
                    counters.append(Counter(egraph.find(c) for c in node.children))
                child_views = [
                    (counter, frozenset(counter), tuple(sorted(counter.elements())))
                    for counter in counters
                ]
                if cache is not None:
                    cache[child] = child_views
            views.append(child_views)
        return views

    @staticmethod
    def _applier(add_class: int, add_node: ENode, i: int, j: int, fi: Counter, fj: Counter, common: Counter):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            rest_i = _multiset_difference(fi, common)
            rest_j = _multiset_difference(fj, common)
            term_i = mk_join(egraph, list(rest_i.elements())) if rest_i else mk_lit(egraph, 1.0)
            term_j = mk_join(egraph, list(rest_j.elements())) if rest_j else mk_lit(egraph, 1.0)
            # The union requires schema-compatible operands: pad the narrower
            # remainder with all-ones tensors over the attributes only the
            # other one carries (e.g. P*X + (-1)*P*P*X factors into
            # P * X * (ones + (-1)*P)).
            term_i, term_j = _pad_to_common_schema(egraph, term_i, term_j)
            if egraph.data(term_i).schema_names != egraph.data(term_j).schema_names:
                return False
            inner_sum = mk_add(egraph, [term_i, term_j])
            factored = mk_join(egraph, list(common.elements()) + [inner_sum])
            other_addends = [
                c for pos, c in enumerate(add_node.children) if pos not in (i, j)
            ]
            replacement = mk_add(egraph, other_addends + [factored])
            egraph.merge(replacement, add_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


def _pad_to_common_schema(egraph: EGraph, term_i: int, term_j: int) -> Tuple[int, int]:
    """Pad two quotient terms with all-ones tensors up to a shared schema."""
    from repro.translate.lower import ONES_PREFIX

    schema_i = egraph.data(term_i).schema
    schema_j = egraph.data(term_j).schema
    names_i = {attr.name for attr in schema_i}
    names_j = {attr.name for attr in schema_j}

    def pad(term: int, own_names, other_schema) -> int:
        missing = [attr for attr in other_schema if attr.name not in own_names]
        if not missing:
            return term
        factors = [
            egraph.add(ENode(OP_VAR, (f"{ONES_PREFIX}{attr.name.split('.')[0]}", (attr,)), ()))
            for attr in sorted(missing, key=lambda a: a.name)
        ]
        return mk_join(egraph, factors + [term])

    return pad(term_i, names_i, schema_j), pad(term_j, names_j, schema_i)


def _multiset_intersection(a: Counter, b: Counter) -> Counter:
    if len(b) < len(a):
        a, b = b, a
    result = Counter()
    for key, count in a.items():
        other = b.get(key)
        if other:
            result[key] = count if count < other else other
    return result


def _multiset_difference(a: Counter, b: Counter) -> Counter:
    result = Counter(a)
    result.subtract(b)
    return +result


# ---------------------------------------------------------------------------
# Rule 1 backward, special case: combine equal addends into a coefficient
# ---------------------------------------------------------------------------


class CombineAddends(Rule):
    """``A + A = 2 * A`` — merge repeated addends into a scalar coefficient.

    The coefficient is the count of equal addends read through the ℕ → S
    homomorphism, so in an idempotent semiring it collapses to one and the
    rewrite degenerates to the ring's own ``A ⊕ A = A``.

    Soundness:
        rings: any-semiring
        needs: counting-literals
    """

    name = "combine-addends"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for add_class, add_node in _each_enode(egraph, OP_ADD, dirty, self.use_index):
            counts = Counter(egraph.find(c) for c in add_node.children)
            if any(count >= 2 for count in counts.values()):
                matches.append(
                    Match(
                        rule_name=self.name,
                        root=add_class,
                        key=(add_class, add_node.sort_key),
                        apply=self._applier(add_class, counts),
                    )
                )
        return matches

    @staticmethod
    def _applier(add_class: int, counts: Counter):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            new_children: List[int] = []
            for child, count in counts.items():
                if count == 1:
                    new_children.append(child)
                else:
                    coefficient = mk_lit(egraph, float(count))
                    new_children.append(mk_join(egraph, [coefficient, child]))
            replacement = mk_add(egraph, new_children)
            egraph.merge(replacement, add_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 2: aggregation distributes over union
# ---------------------------------------------------------------------------


class PushSumIntoAdd(Rule):
    """``Σ_i (A + B) = Σ_i A + Σ_i B``.

    Soundness:
        rings: any-semiring
        needs: associativity, commutativity
    """

    name = "push-sum-into-add"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for sum_class, sum_node in _each_enode(egraph, OP_SUM, dirty, self.use_index):
            child = egraph.find(sum_node.children[0])
            for add_node in _class_nodes(egraph, child, OP_ADD, self.use_index):
                matches.append(
                    Match(
                        rule_name=self.name,
                        root=sum_class,
                        key=(sum_class, sum_node.sort_key, add_node.sort_key),
                        apply=self._applier(sum_class, sum_node.payload, add_node),
                    )
                )
        return matches

    @staticmethod
    def _applier(sum_class: int, indices: FrozenSet[Attr], add_node: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            pushed = [mk_sum(egraph, indices, child) for child in add_node.children]
            replacement = mk_add(egraph, pushed)
            egraph.merge(replacement, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


class PullAddOutOfSum(Rule):
    """``Σ_i A + Σ_i B = Σ_i (A + B)`` when every addend aggregates the same indices.

    The rule intersects the aggregated index sets across *all* addends, so a
    changed-neighbourhood test cannot bound its matches; it opts out of
    incremental search.

    Soundness:
        rings: any-semiring
        needs: associativity, commutativity
    """

    name = "pull-add-out-of-sum"
    incremental = False

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for add_class, add_node in _each_enode(egraph, OP_ADD, None, self.use_index):
            sum_views: List[List[ENode]] = []
            for child in add_node.children:
                child = egraph.find(child)
                sums = _class_nodes(egraph, child, OP_SUM, self.use_index)
                sum_views.append(sums)
            if not all(sum_views):
                continue
            # All addends must agree on the aggregated index names.
            index_sets = [
                {frozenset(a.name for a in node.payload) for node in sums}
                for sums in sum_views
            ]
            shared = set.intersection(*index_sets)
            for names in sorted(shared, key=sorted):
                matches.append(
                    Match(
                        rule_name=self.name,
                        root=add_class,
                        key=(add_class, add_node.sort_key, tuple(sorted(names))),
                        apply=self._applier(add_class, add_node, names, sum_views),
                    )
                )
        return matches

    @staticmethod
    def _applier(add_class: int, add_node: ENode, names: FrozenSet[str], sum_views: List[List[ENode]]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            inner_children: List[int] = []
            indices: Optional[FrozenSet[Attr]] = None
            for sums in sum_views:
                # Choose deterministically (smallest structural key) so the
                # rewrite is independent of the search backend's node order.
                chosen = min(
                    (
                        node
                        for node in sums
                        if frozenset(a.name for a in node.payload) == names
                    ),
                    key=lambda node: node.sort_key,
                    default=None,
                )
                if chosen is None:
                    return False
                indices = chosen.payload if indices is None else indices
                inner_children.append(egraph.find(chosen.children[0]))
            inner_add = mk_add(egraph, inner_children)
            replacement = mk_sum(egraph, indices, inner_add)
            egraph.merge(replacement, add_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 3: aggregation commutes with join factors that do not mention the index
# ---------------------------------------------------------------------------


class PullFactorOutOfSum(Rule):
    """``Σ_i (A * B) = A * Σ_i B`` when i ∉ Attr(A).

    Implemented as a single variable-elimination step: pick one aggregated
    index ``s``, split the join into the factors that mention ``s`` and those
    that do not, aggregate ``s`` over the former only.  Repeated application
    yields the fully factorised sum-product form (e.g.
    ``Σ_{i,j,k} W(i,j) H(j,k)`` becomes
    ``Σ_j (Σ_i W(i,j)) * (Σ_k H(j,k))``, the colSums/rowSums plan of PNMF).

    Soundness:
        rings: any-semiring
        needs: distributivity, commutativity
    """

    name = "pull-factor-out-of-sum"
    expansive = True

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        schema_cache: Dict[int, FrozenSet[str]] = {}

        def schema(class_id: int) -> FrozenSet[str]:
            names = schema_cache.get(class_id)
            if names is None:
                names = schema_cache[class_id] = egraph.data(class_id).schema_names
            return names

        for sum_class, sum_node in _each_enode(egraph, OP_SUM, dirty, self.use_index):
            indices: FrozenSet[Attr] = sum_node.payload
            child = egraph.find(sum_node.children[0])
            for join_node in _class_nodes(egraph, child, OP_JOIN, self.use_index):
                for index in sorted(indices, key=lambda a: a.name):
                    inside = [
                        c for c in join_node.children if index.name in schema(c)
                    ]
                    outside = [
                        c for c in join_node.children if index.name not in schema(c)
                    ]
                    if not inside or not outside:
                        continue
                    matches.append(
                        Match(
                            rule_name=self.name,
                            root=sum_class,
                            key=(sum_class, sum_node.sort_key, index.name, join_node.sort_key),
                            apply=self._applier(sum_class, indices, index, inside, outside),
                        )
                    )
        return matches

    @staticmethod
    def _applier(sum_class: int, indices: FrozenSet[Attr], index: Attr, inside: List[int], outside: List[int]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            inner = mk_sum(egraph, frozenset({index}), mk_join(egraph, inside))
            replacement = mk_sum(
                egraph,
                indices - {index},
                mk_join(egraph, outside + [inner]),
            )
            egraph.merge(replacement, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


class PushFactorIntoSum(Rule):
    """``A * Σ_i B = Σ_i (A * B)`` when i is mentioned nowhere in A.

    The guard requires the pushed index names to be absent from both the free
    schema and the bound-index over-approximation of every other factor,
    which keeps the rewrite capture-avoiding without a renaming step.

    Soundness:
        rings: any-semiring
        needs: distributivity, commutativity
    """

    name = "push-factor-into-sum"
    expansive = True

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        mention_cache: Dict[int, FrozenSet[str]] = {}

        def mentioned(class_id: int) -> FrozenSet[str]:
            names = mention_cache.get(class_id)
            if names is None:
                data = egraph.data(class_id)
                names = mention_cache[class_id] = data.schema_names | data.bound
            return names

        for join_class, join_node in _each_enode(egraph, OP_JOIN, dirty, self.use_index):
            for position, arg in enumerate(join_node.children):
                arg = egraph.find(arg)
                others = list(join_node.children[:position]) + list(join_node.children[position + 1:])
                for sum_node in _class_nodes(egraph, arg, OP_SUM, self.use_index):
                    names = frozenset(a.name for a in sum_node.payload)
                    blocked = False
                    for other in others:
                        if names & mentioned(other):
                            blocked = True
                            break
                    if blocked:
                        continue
                    matches.append(
                        Match(
                            rule_name=self.name,
                            root=join_class,
                            key=(join_class, join_node.sort_key, position, sum_node.sort_key),
                            apply=self._applier(join_class, others, sum_node),
                        )
                    )
        return matches

    @staticmethod
    def _applier(join_class: int, others: List[int], sum_node: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            inner = mk_join(egraph, others + [egraph.find(sum_node.children[0])])
            replacement = mk_sum(egraph, sum_node.payload, inner)
            egraph.merge(replacement, join_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 4: nested aggregations merge
# ---------------------------------------------------------------------------


class MergeNestedSums(Rule):
    """``Σ_i Σ_j A = Σ_{i,j} A``.

    Soundness:
        rings: any-semiring
        needs: associativity, commutativity
    """

    name = "merge-nested-sums"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for sum_class, sum_node in _each_enode(egraph, OP_SUM, dirty, self.use_index):
            child = egraph.find(sum_node.children[0])
            for inner in _class_nodes(egraph, child, OP_SUM, self.use_index):
                outer_names = {a.name for a in sum_node.payload}
                inner_names = {a.name for a in inner.payload}
                if outer_names & inner_names:
                    continue  # would shadow; never produced by the translator
                matches.append(
                    Match(
                        rule_name=self.name,
                        root=sum_class,
                        key=(sum_class, sum_node.sort_key, inner.sort_key),
                        apply=self._applier(sum_class, sum_node.payload, inner),
                    )
                )
        return matches

    @staticmethod
    def _applier(sum_class: int, outer_indices: FrozenSet[Attr], inner: ENode):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            merged = mk_sum(
                egraph,
                frozenset(outer_indices) | frozenset(inner.payload),
                egraph.find(inner.children[0]),
            )
            egraph.merge(merged, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Rule 5: aggregating an index the child does not mention
# ---------------------------------------------------------------------------


class EliminateUnusedIndex(Rule):
    """``Σ_i A = A * dim(i)`` when i ∉ Attr(A).

    ``dim(i)`` is an integer literal read through the ℕ → S homomorphism
    (the |i|-fold ⊕ of one), so in an idempotent semiring the factor
    collapses to one — exactly the ring's own ``Σ_i A = A``.

    Soundness:
        rings: any-semiring
        needs: counting-literals
    """

    name = "eliminate-unused-index"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for sum_class, sum_node in _each_enode(egraph, OP_SUM, dirty, self.use_index):
            child = egraph.find(sum_node.children[0])
            child_schema = _schema_names(egraph, child)
            unused = [a for a in sum_node.payload if a.name not in child_schema]
            if not unused:
                continue
            matches.append(
                Match(
                    rule_name=self.name,
                    root=sum_class,
                    key=(sum_class, sum_node.sort_key),
                    apply=self._applier(sum_class, sum_node, unused),
                )
            )
        return matches

    @staticmethod
    def _applier(sum_class: int, sum_node: ENode, unused: List[Attr]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            factor = 1.0
            for attr in unused:
                factor *= attr.size if attr.size is not None else 1
            remaining = frozenset(sum_node.payload) - frozenset(unused)
            inner = mk_sum(egraph, remaining, egraph.find(sum_node.children[0]))
            replacement = mk_join(egraph, [mk_lit(egraph, factor), inner])
            egraph.merge(replacement, sum_class)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


# ---------------------------------------------------------------------------
# Housekeeping: identity elements
# ---------------------------------------------------------------------------


class DropIdentities(Rule):
    """``A * 1 = A`` and ``A + 0 = A`` for scalar identity classes.

    Constant folding (the class invariant) discovers that a class is the
    scalar 1 or 0; this rule then removes it from joins and unions, which
    keeps the extraction problem small.  Constant discoveries count as
    touches, so the incremental search still sees newly folded children.
    The literals 1 and 0 denote the ring's own identities, so no arithmetic
    beyond the semiring axioms is assumed.

    Soundness:
        rings: any-semiring
    """

    name = "drop-identities"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for op in (OP_JOIN, OP_ADD):
            identity = 1.0 if op == OP_JOIN else 0.0
            for class_id, node in _each_enode(egraph, op, dirty, self.use_index):
                removable = [
                    c
                    for c in node.children
                    if egraph.data(c).constant == identity and not egraph.data(c).schema
                ]
                if not removable or len(removable) == len(node.children):
                    continue
                matches.append(
                    Match(
                        rule_name=self.name,
                        root=class_id,
                        key=(class_id, node.sort_key),
                        apply=self._applier(class_id, node, identity),
                    )
                )
        return matches

    @staticmethod
    def _applier(class_id: int, node: ENode, identity: float):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            keep = [
                c
                for c in node.children
                if not (egraph.data(c).constant == identity and not egraph.data(c).schema)
            ]
            if not keep:
                return False
            if node.op == OP_JOIN:
                replacement = mk_join(egraph, keep)
            else:
                replacement = mk_add(egraph, keep)
            egraph.merge(replacement, class_id)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


class AbsorbOnes(Rule):
    """``ones(i) * A = A`` whenever ``i`` is already in A's schema.

    The lowering pads broadcast additions with synthetic all-ones tensors
    (named ``__ones__<dim>``) so that unions stay schema-compatible.  Inside
    a join such a tensor is the multiplicative identity along an axis the
    other factors already carry, so it can be dropped — which is what lets
    saturation prove e.g. ``X - Y*X = (1 - Y)*X`` where the literal ``1``
    was padded up to a matrix.

    Soundness:
        rings: any-semiring
    """

    name = "absorb-ones"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        from repro.translate.lower import ONES_PREFIX

        matches: List[Match] = []
        for class_id, node in _each_enode(egraph, OP_JOIN, dirty, self.use_index):
            for position, arg in enumerate(node.children):
                arg = egraph.find(arg)
                ones_nodes = [
                    n
                    for n in _class_nodes(egraph, arg, OP_VAR, self.use_index)
                    if n.payload[0].startswith(ONES_PREFIX)
                ]
                if not ones_nodes:
                    continue
                others = list(node.children[:position]) + list(node.children[position + 1:])
                if not others:
                    continue
                ones_schema = _schema_names(egraph, arg)
                others_schema: FrozenSet[str] = frozenset()
                for other in others:
                    others_schema = others_schema | _schema_names(egraph, other)
                if not ones_schema <= others_schema:
                    continue
                matches.append(
                    Match(
                        rule_name=self.name,
                        root=class_id,
                        key=(class_id, node.sort_key, position),
                        apply=self._applier(class_id, others),
                    )
                )
        return matches

    @staticmethod
    def _applier(class_id: int, others: List[int]):
        def apply(egraph: EGraph) -> bool:
            before = egraph.merges_performed, egraph.num_enodes()
            replacement = mk_join(egraph, others)
            egraph.merge(replacement, class_id)
            return (egraph.merges_performed, egraph.num_enodes()) != before

        return apply


def relational_rules(
    include_expansive: bool = True, indexed: bool = True, ring=None
) -> List[Rule]:
    """The full R_EQ rule set in a deterministic order.

    ``indexed=False`` builds the rules with the legacy full-scan searcher
    (every class visited, nodes re-filtered per rule); it exists for the
    e-matching benchmark baseline and for the search-equivalence tests.

    ``ring`` (a :class:`~repro.runtime.semiring.Semiring` or ``None`` for
    real arithmetic) drops every rule the target semiring cannot justify,
    per the audited gating table in :mod:`repro.optimizer.ring_gate`.  The
    audit classified all thirteen R_EQ rules any-semiring sound under the
    counting-literal interpretation, so today the filter is expected to be
    a no-op — but it consults the committed table rather than assuming, so
    a future real-only relational rule is gated the day it is audited.
    """
    rules: List[Rule] = [
        Flatten(OP_JOIN),
        Flatten(OP_ADD),
        DropIdentities(),
        AbsorbOnes(),
        CombineAddends(),
        MergeNestedSums(),
        EliminateUnusedIndex(),
        PushSumIntoAdd(),
        PullAddOutOfSum(),
        PullFactorOutOfSum(),
    ]
    if include_expansive:
        rules.extend([Distribute(), Factor(), PushFactorIntoSum()])
    if ring is not None and not ring.is_real:
        from repro.optimizer.ring_gate import gate_relational

        rules = gate_relational(rules, ring)
    for rule in rules:
        rule.use_index = indexed
    return rules
