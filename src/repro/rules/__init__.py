"""Rewrite-rule collections.

* :mod:`repro.rules.relational` — the R_EQ relational identities (Fig. 3)
  as e-graph rewrite rules.
* :mod:`repro.rules.systemml_catalog` — SystemML's hand-coded sum-product
  rewrite methods (Fig. 14), as structured pattern records used both by the
  heuristic baseline optimizer and by the rule-derivation experiment
  (Sec. 4.1).
"""

from repro.rules.relational import (
    relational_rules,
    Flatten,
    Distribute,
    Factor,
    CombineAddends,
    PushSumIntoAdd,
    PullAddOutOfSum,
    PullFactorOutOfSum,
    PushFactorIntoSum,
    MergeNestedSums,
    EliminateUnusedIndex,
    DropIdentities,
    mk_join,
    mk_add,
    mk_sum,
    mk_lit,
)

__all__ = [
    "relational_rules",
    "Flatten",
    "Distribute",
    "Factor",
    "CombineAddends",
    "PushSumIntoAdd",
    "PullAddOutOfSum",
    "PullFactorOutOfSum",
    "PushFactorIntoSum",
    "MergeNestedSums",
    "EliminateUnusedIndex",
    "DropIdentities",
    "mk_join",
    "mk_add",
    "mk_sum",
    "mk_lit",
]
