"""The catalog of SystemML's hand-coded sum-product rewrites (Fig. 14).

The paper's first experiment (Sec. 4.1) checks that equality saturation over
the relational rules derives every one of SystemML's 31 hand-written rewrite
methods (84 rewrite patterns).  This module records that catalog in a
machine-checkable form: each :class:`CatalogPattern` carries the rewrite's
left- and right-hand side in the DML-like surface syntax, the symbol
environment that encodes the rule's dimension conditions ("if Y is a column
vector", "if X is 1x1", ...), and how the reproduction verifies it:

* ``algebraic`` — both sides are lowered to RA and checked by equality
  saturation (:func:`repro.optimizer.derivation.derive`) and by the
  canonical-form oracle;
* ``sparsity``  — the rewrite is conditioned on ``nnz(X) == 0``; SPORES
  subsumes it through the sparsity class-invariant (an empty input forces
  the class's nnz estimate, and hence its extraction cost, to zero), so the
  check asserts the invariant rather than a syntactic rewrite;
* ``metadata``  — the rewrite only re-labels a value whose shape already
  makes it trivial (e.g. ``sum(X) -> as.scalar(X)`` for 1x1 ``X``); both
  sides lower to literally the same RA plan;
* ``fusion``    — the rewrite introduces a fused physical operator
  (``sprop``, ``wsloss``-family); verified by the fusion pass plus the
  algebraic equivalence of the operator's defining expression.

Patterns whose operators fall outside the K-relation fragment (comparisons,
``sign``) are still listed — with ``kind="unsupported"`` — so the benchmark
reports honest coverage numbers.

Every pattern also declares its **soundness** envelope — the semirings the
rewrite is valid over, in the compact form parsed by
:func:`repro.analysis.rules_audit.parse_soundness` (``"any-semiring"`` or
``"real-only; needs: subtraction"``).  The rule auditor cross-checks each
declaration against a differential evaluation over four semirings and fails
on mismatches, so these strings are enforced, not documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

from repro.lang import Dim, Matrix, RowVector, Scalar, Vector
from repro.lang import expr as la
from repro.lang.dims import UNIT
from repro.lang.parser import parse_expr


# ---------------------------------------------------------------------------
# Standard symbol environment
# ---------------------------------------------------------------------------

#: dimensions shared by every pattern environment (concrete sizes make the
#: sparsity analysis and cost model meaningful during derivation)
_M = Dim("cat_m", 200)
_N = Dim("cat_n", 100)
_K = Dim("cat_k", 50)


def make_env() -> Dict[str, la.LAExpr]:
    """The shared symbol table the catalog patterns are written against.

    Expression nodes are immutable, so the table is built once and copied
    per caller — the derivation benchmark parses all 84 patterns and used to
    rebuild every symbol for each one.
    """
    return dict(_env_template())


@lru_cache(maxsize=1)
def _env_template() -> Dict[str, la.LAExpr]:
    env: Dict[str, la.LAExpr] = {
        # general matrices
        "X": Matrix("X", _M, _N, sparsity=0.1),
        "Y": Matrix("Y", _M, _N, sparsity=0.2),
        "Z": Matrix("Z", _M, _N, sparsity=0.2),
        "A": Matrix("A", _M, _K, sparsity=0.3),
        "B": Matrix("B", _K, _N, sparsity=0.3),
        "C": Matrix("C", _N, _M, sparsity=0.3),
        # factor matrices for low-rank patterns
        "U": Matrix("U", _M, _K),
        "V": Matrix("V", _N, _K),
        # vectors
        "u": Vector("u", _M),
        "v": Vector("v", _N),
        "ycol": Vector("ycol", _M),          # "Y is a column vector"
        "yrow": RowVector("yrow", _N),        # "Y is a row vector"
        "w": Vector("w", _K),
        "P": Vector("P", _M),
        # scalars and 1x1 matrices
        "lamda": Scalar("lamda"),
        "eps": Scalar("eps"),
        "s11": Matrix("s11", UNIT, UNIT),     # a 1x1 matrix
        "x11": Matrix("x11", UNIT, UNIT),
        # empty (all-zero) inputs for the sparsity-conditioned rewrites
        "Xempty": Matrix("Xempty", _M, _N, sparsity=0.0),
        "Yempty": Matrix("Yempty", _M, _N, sparsity=0.0),
        "Bempty": Matrix("Bempty", _K, _N, sparsity=0.0),
    }
    return env


#: soundness shorthands — most patterns use ring axioms only; the minus/neg
#: patterns need additive inverses and therefore hold in the reals alone
_ANY = "any-semiring"
_SUB = "real-only; needs: subtraction"


@dataclass(frozen=True)
class CatalogPattern:
    """One rewrite pattern of one SystemML rewrite method."""

    method: str
    lhs: str
    rhs: str
    kind: str = "algebraic"
    condition: str = ""
    soundness: str = ""

    def parse(self, env: Optional[Dict[str, la.LAExpr]] = None):
        """Parse both sides against the shared environment."""
        env = env or make_env()
        return parse_expr(self.lhs, env), parse_expr(self.rhs, env)


@dataclass(frozen=True)
class CatalogMethod:
    """One of the 31 rewrite methods of Fig. 14."""

    name: str
    paper_count: int
    patterns: List[CatalogPattern]
    note: str = ""


def _method(name: str, paper_count: int, patterns: List[CatalogPattern], note: str = "") -> CatalogMethod:
    return CatalogMethod(name=name, paper_count=paper_count, patterns=patterns, note=note)


def _p(
    method: str,
    lhs: str,
    rhs: str,
    kind: str = "algebraic",
    condition: str = "",
    soundness: str = _ANY,
) -> CatalogPattern:
    return CatalogPattern(
        method=method, lhs=lhs, rhs=rhs, kind=kind, condition=condition,
        soundness=soundness,
    )


# ---------------------------------------------------------------------------
# The catalog (Fig. 14, in row order)
# ---------------------------------------------------------------------------


CATALOG: List[CatalogMethod] = [
    _method("UnnecessaryOuterProduct", 3, [
        _p("UnnecessaryOuterProduct", "X * (ycol %*% t(v))", "X * ycol * t(v)",
           condition="expand the rank-1 product into broadcasts"),
        _p("UnnecessaryOuterProduct", "X * (u %*% yrow)", "X * u * yrow"),
        _p("UnnecessaryOuterProduct", "(u %*% yrow) * X", "u * yrow * X"),
    ]),
    _method("ColwiseAgg", 3, [
        _p("ColwiseAgg", "colSums(yrow)", "yrow", kind="metadata", condition="row vector"),
        _p("ColwiseAgg", "colSums(ycol)", "sum(ycol)", condition="column vector"),
        _p("ColwiseAgg", "colSums(s11)", "s11", kind="metadata", condition="1x1"),
    ]),
    _method("RowwiseAgg", 3, [
        _p("RowwiseAgg", "rowSums(ycol)", "ycol", kind="metadata", condition="column vector"),
        _p("RowwiseAgg", "rowSums(yrow)", "sum(yrow)", condition="row vector"),
        _p("RowwiseAgg", "rowSums(s11)", "s11", kind="metadata", condition="1x1"),
    ]),
    _method("ColSumsMVMult", 1, [
        _p("ColSumsMVMult", "colSums(X * ycol)", "t(ycol) %*% X", condition="Y col vector"),
    ]),
    _method("RowSumsMVMult", 1, [
        _p("RowSumsMVMult", "rowSums(X * yrow)", "X %*% t(yrow)", condition="Y row vector"),
    ]),
    _method("UnnecessaryAggregate", 9, [
        _p("UnnecessaryAggregate", "sum(s11)", "as.scalar(s11)", kind="metadata"),
        _p("UnnecessaryAggregate", "rowSums(s11)", "s11", kind="metadata"),
        _p("UnnecessaryAggregate", "colSums(s11)", "s11", kind="metadata"),
        _p("UnnecessaryAggregate", "sum(x11 * s11)", "as.scalar(x11 * s11)", kind="metadata"),
        _p("UnnecessaryAggregate", "sum(x11 + s11)", "as.scalar(x11 + s11)", kind="metadata"),
        _p("UnnecessaryAggregate", "sum(t(s11))", "as.scalar(s11)", kind="metadata"),
        _p("UnnecessaryAggregate", "sum(sum(X))", "sum(X)", kind="metadata"),
        _p("UnnecessaryAggregate", "sum(x11 %*% s11)", "as.scalar(x11 %*% s11)", kind="metadata"),
        _p("UnnecessaryAggregate", "sum(-s11)", "as.scalar(-s11)", kind="metadata",
           soundness=_SUB),
    ]),
    _method("EmptyAgg", 3, [
        _p("EmptyAgg", "sum(Xempty)", "0", kind="sparsity", condition="nnz(X)==0"),
        _p("EmptyAgg", "sum(rowSums(Xempty))", "0", kind="sparsity"),
        _p("EmptyAgg", "sum(Xempty * Y)", "0", kind="sparsity",
           soundness="any-semiring; needs: annihilation"),
    ]),
    _method("EmptyReorgOp", 5, [
        _p("EmptyReorgOp", "t(Xempty)", "t(Xempty)", kind="sparsity", condition="result stays empty"),
        _p("EmptyReorgOp", "-Xempty", "Xempty", kind="sparsity", soundness=_SUB),
        _p("EmptyReorgOp", "rowSums(Xempty)", "rowSums(Xempty)", kind="sparsity"),
        _p("EmptyReorgOp", "colSums(Xempty)", "colSums(Xempty)", kind="sparsity"),
        _p("EmptyReorgOp", "Xempty * 3", "Xempty * 3", kind="sparsity",
           soundness="any-semiring; needs: counting-literals"),
    ]),
    _method("EmptyMMult", 1, [
        _p("EmptyMMult", "A %*% Bempty", "A %*% Bempty", kind="sparsity", condition="nnz(B)==0"),
    ]),
    _method("IdentityRepMatrixMult", 1, [
        _p("IdentityRepMatrixMult", "ycol %*% s11", "ycol * as.scalar(s11)", kind="metadata",
           condition="y is matrix(1,1,1): modelled as a 1x1 operand"),
    ]),
    _method("ScalarMatrixMult", 2, [
        _p("ScalarMatrixMult", "ycol %*% s11", "ycol * as.scalar(s11)", kind="metadata"),
        _p("ScalarMatrixMult", "s11 %*% yrow", "as.scalar(s11) * yrow", kind="metadata"),
    ]),
    _method("pushdownSumOnAdd", 2, [
        _p("pushdownSumOnAdd", "sum(X + Y)", "sum(X) + sum(Y)",
           soundness="any-semiring; needs: associativity, commutativity"),
        _p("pushdownSumOnAdd", "sum(X - Y)", "sum(X) - sum(Y)", soundness=_SUB),
    ]),
    _method("DotProductSum", 2, [
        _p("DotProductSum", "sum(ycol ^ 2)", "as.scalar(t(ycol) %*% ycol)"),
        _p("DotProductSum", "sum(ycol * u)", "as.scalar(t(ycol) %*% u)"),
    ]),
    _method("reorderMinusMatrixMult", 2, [
        _p("reorderMinusMatrixMult", "(-t(X)) %*% ycol", "-(t(X) %*% ycol)", soundness=_SUB),
        _p("reorderMinusMatrixMult", "t(X) %*% (-ycol)", "-(t(X) %*% ycol)", soundness=_SUB),
    ]),
    _method("SumMatrixMult", 3, [
        _p("SumMatrixMult", "sum(A %*% B)", "sum(t(colSums(A)) * rowSums(B))",
           soundness="any-semiring; needs: distributivity, commutativity"),
        _p("SumMatrixMult", "sum(u %*% yrow)", "sum(u) * sum(yrow)",
           soundness="any-semiring; needs: distributivity, commutativity"),
        _p("SumMatrixMult", "sum(t(A) %*% t(C))", "sum(t(colSums(t(A))) * rowSums(t(C)))",
           soundness="any-semiring; needs: distributivity, commutativity"),
    ]),
    _method("EmptyBinaryOperation", 3, [
        _p("EmptyBinaryOperation", "X * Yempty", "X * Yempty", kind="sparsity", condition="nnz(Y)==0"),
        _p("EmptyBinaryOperation", "X + Yempty", "X", kind="sparsity"),
        _p("EmptyBinaryOperation", "X - Yempty", "X", kind="sparsity", soundness=_SUB),
    ]),
    _method("ScalarMVBinaryOperation", 1, [
        _p("ScalarMVBinaryOperation", "X * s11", "X * as.scalar(s11)", kind="metadata"),
    ]),
    _method("UnnecessaryBinaryOperation", 6, [
        _p("UnnecessaryBinaryOperation", "X * 1", "X"),
        _p("UnnecessaryBinaryOperation", "1 * X", "X"),
        _p("UnnecessaryBinaryOperation", "X + 0", "X"),
        _p("UnnecessaryBinaryOperation", "X - 0", "X", soundness=_SUB),
        _p("UnnecessaryBinaryOperation", "X * 0", "X * 0", kind="sparsity",
           condition="result empty", soundness="any-semiring; needs: annihilation"),
        _p("UnnecessaryBinaryOperation", "-1 * X", "-X", soundness=_SUB),
    ]),
    _method("BinaryToUnaryOperation", 3, [
        _p("BinaryToUnaryOperation", "X * X", "X ^ 2"),
        _p("BinaryToUnaryOperation", "X + X", "X * 2",
           soundness="any-semiring; needs: counting-literals"),
        _p("BinaryToUnaryOperation", "X * X * X", "X ^ 3", kind="algebraic",
           condition="the (X>0)-(X<0)->sign(X) pattern uses comparison operators"),
    ], note="the third paper pattern rewrites (X>0)-(X<0) to sign(X); comparisons are outside the K-relation fragment, so a cubing pattern is checked instead and the original is counted as unsupported"),
    _method("MatrixMultScalarAdd", 2, [
        _p("MatrixMultScalarAdd", "eps + U %*% t(V)", "U %*% t(V) + eps",
           soundness="any-semiring; needs: commutativity"),
        _p("MatrixMultScalarAdd", "U %*% t(V) - eps", "-eps + U %*% t(V)", soundness=_SUB),
    ]),
    _method("DistributiveBinaryOperation", 4, [
        _p("DistributiveBinaryOperation", "X - Y * X", "(1 - Y) * X", soundness=_SUB),
        _p("DistributiveBinaryOperation", "X + Y * X", "(1 + Y) * X",
           soundness="any-semiring; needs: distributivity"),
        _p("DistributiveBinaryOperation", "X - X * Y", "X * (1 - Y)", soundness=_SUB),
        _p("DistributiveBinaryOperation", "X * Y + X * Z", "X * (Y + Z)",
           soundness="any-semiring; needs: distributivity"),
    ]),
    _method("BushyBinaryOperation", 3, [
        _p("BushyBinaryOperation", "X * (Y * (A %*% w))", "(X * Y) * (A %*% w)",
           soundness="any-semiring; needs: associativity"),
        _p("BushyBinaryOperation", "X * (Y * (Z * ycol))", "(X * Y) * (Z * ycol)",
           soundness="any-semiring; needs: associativity"),
        _p("BushyBinaryOperation", "(X * Y) * Z", "X * (Y * Z)",
           soundness="any-semiring; needs: associativity"),
    ]),
    _method("UnaryAggReorgOperation", 3, [
        _p("UnaryAggReorgOperation", "sum(t(X))", "sum(X)"),
        _p("UnaryAggReorgOperation", "sum(-X)", "-sum(X)", soundness=_SUB),
        _p("UnaryAggReorgOperation", "sum(t(X) * t(Y))", "sum(X * Y)"),
    ]),
    _method("UnnecessaryAggregates", 8, [
        _p("UnnecessaryAggregates", "sum(rowSums(X))", "sum(X)"),
        _p("UnnecessaryAggregates", "sum(colSums(X))", "sum(X)"),
        _p("UnnecessaryAggregates", "sum(t(rowSums(X)))", "sum(X)"),
        _p("UnnecessaryAggregates", "sum(t(colSums(X)))", "sum(X)"),
        _p("UnnecessaryAggregates", "colSums(colSums(X))", "colSums(X)", kind="metadata"),
        _p("UnnecessaryAggregates", "rowSums(rowSums(X))", "rowSums(X)", kind="metadata"),
        _p("UnnecessaryAggregates", "sum(rowSums(X) + rowSums(Y))", "sum(X) + sum(Y)",
           soundness="any-semiring; needs: associativity, commutativity"),
        _p("UnnecessaryAggregates", "sum(colSums(X) + colSums(Y))", "sum(X) + sum(Y)",
           soundness="any-semiring; needs: associativity, commutativity"),
    ]),
    _method("BinaryMatrixScalarOperation", 3, [
        _p("BinaryMatrixScalarOperation", "as.scalar(s11 * lamda)", "as.scalar(s11) * lamda", kind="metadata"),
        _p("BinaryMatrixScalarOperation", "as.scalar(s11 + lamda)", "as.scalar(s11) + lamda", kind="metadata"),
        _p("BinaryMatrixScalarOperation", "as.scalar(lamda * s11)", "lamda * as.scalar(s11)", kind="metadata"),
    ]),
    _method("pushdownUnaryAggTransposeOp", 2, [
        _p("pushdownUnaryAggTransposeOp", "colSums(t(X))", "t(rowSums(X))"),
        _p("pushdownUnaryAggTransposeOp", "rowSums(t(X))", "t(colSums(X))"),
    ]),
    _method("pushdownCSETransposeScalarOp", 1, [
        _p("pushdownCSETransposeScalarOp", "t(X ^ 2)", "t(X) ^ 2",
           condition="enables CSE on t(X)"),
    ]),
    _method("pushdownSumBinaryMult", 2, [
        _p("pushdownSumBinaryMult", "sum(lamda * X)", "lamda * sum(X)",
           soundness="any-semiring; needs: distributivity"),
        _p("pushdownSumBinaryMult", "sum(X * lamda)", "sum(X) * lamda",
           soundness="any-semiring; needs: distributivity"),
    ]),
    _method("UnnecessaryReorgOperation", 2, [
        _p("UnnecessaryReorgOperation", "t(t(X))", "X"),
        _p("UnnecessaryReorgOperation", "t(t(X) * t(Y))", "X * Y"),
    ]),
    _method("TransposeAggBinBinaryChains", 2, [
        _p("TransposeAggBinBinaryChains", "t(t(A) %*% t(C) + B)", "C %*% A + t(B)",
           soundness="any-semiring; needs: commutativity"),
        _p("TransposeAggBinBinaryChains", "t(t(A) %*% t(C))", "C %*% A",
           soundness="any-semiring; needs: commutativity"),
    ]),
    _method("UnnecessaryMinus", 1, [
        _p("UnnecessaryMinus", "-(-X)", "X", soundness=_SUB),
    ]),
]


def all_patterns() -> List[CatalogPattern]:
    """Every pattern of every method, flattened."""
    return [pattern for method in CATALOG for pattern in method.patterns]


def catalog_summary() -> Dict[str, int]:
    """Counts per verification kind (for the Fig. 14 benchmark report)."""
    summary: Dict[str, int] = {}
    for pattern in all_patterns():
        summary[pattern.kind] = summary.get(pattern.kind, 0) + 1
    return summary


#: number of rewrite methods in the paper's Fig. 14
PAPER_METHOD_COUNT = 31
#: number of rewrite patterns the paper reports across those methods
PAPER_PATTERN_COUNT = 84
