"""Compiled plans: the execute-many half of the Session API.

A :class:`CompiledPlan` is what :meth:`repro.api.Session.compile` returns.
It wraps the shared, cached compilation artifact (the name-free slot-space
physical plan plus its optimization lineage) together with *this request's*
view of it: the mapping from the request's input names to slots.  Two
requests whose expressions are renamed-but-isomorphic share one cached
artifact and hold two cheap :class:`CompiledPlan` views.

``plan.run(**inputs)`` binds concrete values to the slots — validating that
every declared input is provided, nothing extra is, and the shapes match
the compiled dimension sizes — and executes the slot-space plan through
:func:`repro.runtime.execute_slots`.  Every execution is recorded in
per-plan statistics, including the observed sparsity of each input; when
the observed non-zero count drifts far from the hint the cost model
optimized under, the owning Session recompiles the plan against the
observed statistics (the plan object keeps working, now backed by the
re-optimized artifact).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.canonical.fingerprint import (
    ExprSignature,
    SlotSpec,
    rebind_dim_sizes,
    signature_of,
    slot_dim_name,
)
from repro.lang import dag
from repro.lang import expr as la
from repro.optimizer.guards import TemplateGuard
from repro.optimizer.pipeline import OptimizationReport, PlanArtifact
from repro.runtime.data import MatrixValue, as_value
from repro.runtime.engine import ExecutionResult, Executor
from repro.runtime.semiring import Semiring, resolve_semiring

InputValue = Union[MatrixValue, np.ndarray, float, int]


class PlanBindingError(ValueError):
    """Raised when inputs cannot be bound to a compiled plan's slots."""


class TemplateGuardError(ValueError):
    """Raised when an instantiation falls outside a template's guard."""


#: observed nnz may exceed (or undershoot) the compiled hint by this factor
#: before a plan is considered stale; sessions can override per instance
DEFAULT_DRIFT_FACTOR = 8.0

#: weight of the newest observation in the per-slot sparsity EWMA that
#: gates drift detection; sessions can override per instance.  The EWMA is
#: seeded at the compiled hint, so one moderate outlier cannot trigger a
#: recompile (the smoothed value moves only ``alpha`` of the way), while a
#: sustained regime change converges on the observed level within a few
#: executions and trips the drift factor.
DEFAULT_DRIFT_ALPHA = 0.4


@dataclass(frozen=True)
class PlanEntry:
    """The cached unit: one compilation artifact in slot space.

    Shared by every :class:`CompiledPlan` whose expression fingerprints to
    the same key; immutable so sharing across threads is safe.

    Since the plan-template refactor an entry doubles as a **guarded
    template**: ``guard`` records the dimension-size ranges and sparsity
    bands inside which the artifact may serve *other* instance digests of
    the same :attr:`template_digest` through cheap size re-pinning
    (:func:`specialize_entry`).  ``guard=None`` means exact-match only —
    the conservative pre-template behavior, and what v1 store payloads
    load as.
    """

    artifact: PlanArtifact
    #: the fused physical plan with inputs renamed to slot variables
    slot_plan: la.LAExpr
    #: signature of the expression this entry serves.  For a freshly
    #: compiled entry that is the compiling expression's signature; for a
    #: template specialization it is the *instance's* signature (sizes
    #: re-pinned, names of whoever triggered the specialization).
    signature: ExprSignature
    #: cross-size validity region, or ``None`` for exact-match only
    guard: Optional[TemplateGuard] = None
    #: this entry is the *unoptimized baseline* plan, installed because the
    #: optimizer overran its budget or crashed (sound by construction —
    #: R_EQ keeps every rewrite semantically equal to the input).  Degraded
    #: entries are never persisted to the store and never serve as
    #: templates; a later compile with budget to spare replaces them.
    degraded: bool = False

    @property
    def template_digest(self) -> str:
        """Size-free digest this entry can serve (via its guard)."""
        return self.signature.template_digest


def specialize_entry(entry: PlanEntry, signature: ExprSignature) -> PlanEntry:
    """Re-pin a template entry to a new instance's concrete sizes.

    The slot-space physical plan is rebuilt with every canonical dimension
    slot bound to the instance's size — one linear DAG walk, no saturation
    — and the entry adopts the instance's signature (its sizes, sparsity
    hints and input names).  The artifact and guard are shared with the
    pivot: specializations compose, so a specialized entry is itself a
    valid template candidate for further sizes.

    Callers are responsible for checking ``entry.guard.admits(signature)``
    first; this function only performs the mechanical re-pinning.
    """
    sizes = {
        slot_dim_name(index): size
        for index, size in enumerate(signature.dim_sizes)
    }
    return PlanEntry(
        artifact=entry.artifact,
        slot_plan=rebind_dim_sizes(entry.slot_plan, sizes),
        signature=signature,
        guard=entry.guard,
        degraded=entry.degraded,
    )


@dataclass
class PlanStats:
    """Per-plan execution statistics (one plan = one request-side view)."""

    executions: int = 0
    total_elapsed: float = 0.0
    total_intermediate_cells: float = 0.0
    drift_events: int = 0
    recompiles: int = 0
    #: last observed sparsity per slot index
    observed_sparsity: Dict[int, float] = field(default_factory=dict)
    #: per-slot EWMA of the observed sparsity, seeded at the compiled hint;
    #: this smoothed value — not the raw last observation — is what drift
    #: detection compares against the hint, so one outlier request cannot
    #: trigger a recompile
    smoothed_sparsity: Dict[int, float] = field(default_factory=dict)

    @property
    def mean_elapsed(self) -> float:
        if not self.executions:
            return 0.0
        return self.total_elapsed / self.executions

    def snapshot(self) -> "PlanStats":
        """A consistent copy (callers must hold the owning plan's lock).

        ``run`` mutates several fields per execution; reading them one at a
        time from another thread can observe a torn record (executions
        incremented, elapsed not yet).  ``to_dict``/``explain`` snapshot
        through this under :attr:`CompiledPlan._lock` instead.
        """
        return PlanStats(
            executions=self.executions,
            total_elapsed=self.total_elapsed,
            total_intermediate_cells=self.total_intermediate_cells,
            drift_events=self.drift_events,
            recompiles=self.recompiles,
            observed_sparsity=dict(self.observed_sparsity),
            smoothed_sparsity=dict(self.smoothed_sparsity),
        )


class CompiledPlan:
    """An optimized, executable plan bound to one request's input names."""

    def __init__(
        self,
        entry: PlanEntry,
        signature: ExprSignature,
        source: la.LAExpr,
        session: Optional[object] = None,
        cache_hit: bool = False,
        template_hit: bool = False,
        ring: Union[str, Semiring, None] = None,
    ) -> None:
        self._entry = entry
        self.signature = signature
        self.source = source
        self._session = weakref.ref(session) if session is not None else None
        #: whether this plan came out of the cache (saturation was skipped)
        self.cache_hit = cache_hit
        #: whether the backing artifact was specialized from a plan template
        #: compiled at *different* sizes (a guard hit): saturation was
        #: skipped, only size re-pinning was paid
        self.template_hit = template_hit
        #: the semiring this plan executes over — inherited from the owning
        #: session's config at compile time; a detached plan keeps it so
        #: re-instantiation stays in-ring
        self.ring = resolve_semiring(ring)
        self.stats = PlanStats()
        self._lock = threading.Lock()
        self._executor = Executor(self.ring)
        #: last :class:`repro.obs.profile.ProfileReport` from :meth:`profile`
        self._profile = None

    # -- introspection ---------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Canonical fingerprint of the artifact currently backing the plan."""
        return self._entry.signature.digest

    @property
    def template_digest(self) -> str:
        """Size-free template digest of the backing artifact."""
        return self._entry.template_digest

    @property
    def guard(self) -> Optional[TemplateGuard]:
        """The cross-size validity guard of the backing template (if any)."""
        return self._entry.guard

    @property
    def degraded(self) -> bool:
        """Whether this plan is the unoptimized baseline (budget fallback).

        A degraded plan computes exactly the declared expression — results
        are bitwise-identical to the optimized plan's (R_EQ soundness) —
        it just skipped the saturation the optimizer could not afford.
        """
        return self._entry.degraded

    @property
    def artifact(self) -> PlanArtifact:
        return self._entry.artifact

    @property
    def report(self) -> OptimizationReport:
        return self._entry.artifact.report

    @property
    def optimized(self) -> la.LAExpr:
        return self._entry.artifact.optimized

    @property
    def slots(self) -> Tuple[SlotSpec, ...]:
        """Slot metadata under *this request's* names.

        The request signature is digest-equal to the cached entry's — same
        sizes, same sparsity hints — so it is the authoritative description
        of the slots, with the names this plan actually binds (a cache-hit
        twin must not leak the names of whoever compiled first).
        """
        return self.signature.slots

    @property
    def input_names(self) -> Tuple[str, ...]:
        """The input names this plan binds, in slot order."""
        return self.signature.var_order

    def _in_request_names(
        self,
        expr: la.LAExpr,
        entry: Optional[PlanEntry] = None,
        signature: Optional[ExprSignature] = None,
        source: Optional[la.LAExpr] = None,
    ) -> la.LAExpr:
        """Render a cached (compile-time-named) expression in this plan's names.

        A cache-hit twin shares an artifact compiled from someone else's
        expression; everything user-facing must speak the twin's own names.
        The substitution is *simultaneous* (``dag.substitute`` applies one
        bottom-up pass over the whole mapping), which matters when the
        request permutes names the compiling expression also used — e.g.
        compiled with ``(A, B)``, requested with ``(B, A)`` in swapped
        roles — so ``A -> B`` can never collide with ``B -> A`` mid-walk.
        Callers that snapshot under the plan lock pass the snapshotted
        entry/signature/source explicitly.
        """
        entry = entry if entry is not None else self._entry
        signature = signature if signature is not None else self.signature
        source = source if source is not None else self.source
        request_vars = {var.name: var for var in dag.variables(source)}
        bindings = {
            entry_name: request_vars[request_name]
            for entry_name, request_name in zip(
                entry.signature.var_order, signature.var_order
            )
            if entry_name != request_name and request_name in request_vars
        }
        if not bindings:
            return expr
        return dag.substitute_vars(expr, bindings)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record: lineage plus binding and run statistics.

        Everything mutable — the backing entry (a drift recompile can swap
        it), the signature, and the run statistics — is snapshotted under
        the plan lock first, so a record taken while another thread is in
        ``run`` is internally consistent, never torn.
        """
        with self._lock:
            entry = self._entry
            signature = self.signature
            source = self.source
            stats = self.stats.snapshot()
            profile = self._profile
        record = entry.artifact.to_dict()
        record["original"] = str(source)
        record["optimized"] = str(
            self._in_request_names(entry.artifact.optimized, entry, signature, source)
        )
        record["fused"] = str(
            self._in_request_names(entry.artifact.fused, entry, signature, source)
        )
        record["fingerprint"] = entry.signature.digest
        record["template_digest"] = entry.template_digest
        record["cache_hit"] = self.cache_hit
        record["template_hit"] = self.template_hit
        record["degraded"] = entry.degraded
        record["guard"] = entry.guard.to_json() if entry.guard is not None else None
        record["slots"] = [
            {
                "index": spec.index,
                "name": name,
                "rows": spec.rows,
                "cols": spec.cols,
                "sparsity": spec.sparsity,
            }
            for spec, name in zip(signature.slots, signature.var_order)
        ]
        record["stats"] = {
            "executions": stats.executions,
            "total_elapsed": stats.total_elapsed,
            "mean_elapsed": stats.mean_elapsed,
            "total_intermediate_cells": stats.total_intermediate_cells,
            "drift_events": stats.drift_events,
            "recompiles": stats.recompiles,
            "observed_sparsity": {
                str(slot): value for slot, value in sorted(stats.observed_sparsity.items())
            },
            "smoothed_sparsity": {
                str(slot): value for slot, value in sorted(stats.smoothed_sparsity.items())
            },
        }
        if profile is not None:
            record["profile"] = profile.to_dict()
        record["codegen"] = self.codegen_info()
        return record

    def codegen_info(self, backend: Optional[str] = None) -> Dict[str, object]:
        """What fused code generation does (or would do) with this plan.

        Compiles the slot-space plan through
        :func:`repro.runtime.codegen.compile_fused` under ``backend``
        (default: the same resolution the serving tier uses) and reports
        the outcome: whether a fused executable exists, its region
        structure against the interpreter tape's step count, the
        columnwise batching slot, and numba availability.  Purely
        introspective — nothing is executed and the serving state is not
        touched.
        """
        # Local import: codegen pulls in the tape runtime, which this
        # module must not import eagerly.
        from repro.runtime.codegen import (
            compile_fused,
            numba_available,
            resolve_backend,
            stackable_slot,
        )
        from repro.runtime.tape import TapePlan

        with self._lock:
            entry = self._entry
            signature = self.signature
        n_slots = len(signature.slots)
        choice = resolve_backend(backend)
        fused = compile_fused(
            entry.slot_plan,
            n_slots,
            ring=self.ring,
            slot_sparsity={spec.index: spec.sparsity for spec in signature.slots},
            backend=choice,
        )
        info: Dict[str, object] = {
            "backend": choice,
            "fused": fused is not None,
            "numba_available": numba_available(),
            "tape_steps": len(TapePlan(entry.slot_plan, n_slots, ring=self.ring)),
            "batch_slot": stackable_slot(entry.slot_plan, n_slots),
        }
        if fused is not None:
            info["regions"] = len(fused)
            info["fused_regions"] = fused.fused_regions
            info["fused_operators"] = fused.fused_operators
            info["numba_active"] = fused.numba_active
            info["region_labels"] = [
                fused.step_label(index) for index in range(len(fused))
            ]
        return info

    def explain(self) -> str:
        """Human-readable summary of what this plan is and where it came from."""
        with self._lock:
            entry = self._entry
            signature = self.signature
            source = self.source
            stats = self.stats.snapshot()
        report = entry.artifact.report
        guard = entry.guard.describe() if entry.guard is not None else "none (exact)"
        smoothed = (
            ", ".join(
                f"slot {slot}: {value:.3g}"
                for slot, value in sorted(stats.smoothed_sparsity.items())
            )
            or "-"
        )
        lines = [
            f"fingerprint : {entry.signature.digest}",
            f"template    : {entry.template_digest}"
            f" ({'template hit' if self.template_hit else 'pivot'})",
            f"guard       : {guard}",
            f"cache hit   : {self.cache_hit}"
            + (" (degraded: baseline plan, optimizer budget fallback)" if entry.degraded else ""),
            "inputs      : " + ", ".join(spec.describe() for spec in signature.slots),
            f"declared    : {source}",
            f"optimized   : {self._in_request_names(entry.artifact.optimized, entry, signature, source)}",
            f"physical    : {self._in_request_names(entry.artifact.fused, entry, signature, source)}",
            f"codegen     : {self._describe_codegen()}",
            f"cost        : {report.original_cost:.4g} -> {report.optimized_cost:.4g}"
            f" ({report.speedup_estimate:.3g}x estimated)",
            f"compile     : translate {report.phase_times.translate * 1e3:.1f} ms,"
            f" saturate {report.phase_times.saturate * 1e3:.1f} ms,"
            f" extract {report.phase_times.extract * 1e3:.1f} ms",
            f"runs        : {stats.executions}"
            f" (mean {stats.mean_elapsed * 1e3:.2f} ms,"
            f" drift events {stats.drift_events}, recompiles {stats.recompiles})",
            f"sparsity    : smoothed {smoothed}",
        ]
        with self._lock:
            profile = self._profile
        if profile is not None:
            lines.append("profile     : predicted cost vs measured, per tape step")
            lines.extend("  " + line for line in profile.table())
        return "\n".join(lines)

    def _describe_codegen(self) -> str:
        """One truthful ``explain()`` line about fused code generation."""
        info = self.codegen_info()
        batch = (
            f", column-stackable in slot {info['batch_slot']}"
            if info["batch_slot"] is not None
            else ""
        )
        if not info["fused"]:
            reason = (
                "backend off"
                if info["backend"] == "off"
                else f"ring {self.ring.name}" if not self.ring.is_real
                else "unsupported construct"
            )
            return f"interpreter ({reason}), tape {info['tape_steps']} steps{batch}"
        numba = ", numba" if info.get("numba_active") else ""
        return (
            f"{info['backend']} backend{numba}: {info['regions']} regions"
            f" ({info['fused_regions']} fused, {info['fused_operators']} operators"
            f" fused) vs tape {info['tape_steps']} steps{batch}"
        )

    # -- profiling ---------------------------------------------------------------
    def profile(
        self,
        inputs: Optional[Mapping[str, InputValue]] = None,
        /,
        runs: int = 1,
        backend: str = "tape",
        **named: InputValue,
    ):
        """Execute the plan under the per-step profiler.

        Compiles the slot-space plan to an executor, runs it ``runs``
        times over the given inputs with every step individually timed,
        and joins the measurements against the analytic cost model's
        per-node estimates.  Returns the resulting
        :class:`repro.obs.profile.ProfileReport`; the report is also
        retained so subsequent :meth:`explain` calls render its
        predicted-cost-vs-measured table.

        ``backend="tape"`` (the default) profiles the interpreter tape,
        one step per operator.  ``backend="fused"`` (or any codegen
        backend name) profiles the fused executable instead: one step per
        *region*, with each row's predicted cost summed over the plan
        nodes the region covers (``step_group``), so fused rows stay
        truthful about what they measure; when codegen cannot serve the
        plan this silently profiles the tape (same fallback the serving
        tier takes).

        Unlike :meth:`run`, profiling executions do not count toward the
        plan's serving statistics or drift detection — the profiler's
        per-step timing overhead would pollute both.
        """
        # Local imports: repro.obs.profile pulls in the cost model, which
        # this module must not import eagerly.
        from repro.obs.profile import TapeProfiler, build_report
        from repro.runtime.codegen import build_executable
        from repro.runtime.tape import TapePlan

        if runs < 1:
            raise ValueError("profile requires runs >= 1")
        values = self._bind(inputs, named)
        with self._lock:
            entry = self._entry
            signature = self.signature
        if backend == "tape":
            executor: object = TapePlan(entry.slot_plan, len(values), ring=self.ring)
        else:
            executor = build_executable(
                entry.slot_plan,
                len(values),
                ring=self.ring,
                slot_sparsity={
                    spec.index: spec.sparsity for spec in signature.slots
                },
                backend=None if backend == "fused" else backend,
            )
        profiler = TapeProfiler(len(executor))
        for _ in range(runs):
            executor.execute(values, profiler=profiler)
            profiler.finish_run()
        report = build_report(executor, profiler, entry.slot_plan)
        with self._lock:
            self._profile = report
        return report

    @property
    def profile_report(self):
        """The last :meth:`profile` report, or ``None`` if never profiled."""
        with self._lock:
            return self._profile

    # -- execution -------------------------------------------------------------
    def run(
        self,
        inputs: Optional[Mapping[str, InputValue]] = None,
        /,
        **named: InputValue,
    ) -> ExecutionResult:
        """Bind inputs to slots, validate them, execute, record statistics.

        Inputs may be passed as one mapping, as keyword arguments, or both
        (keywords win on overlap).  Every declared input must be provided
        and nothing else: unknown names are rejected rather than ignored so
        typos fail loudly.  The mapping parameter is positional-only, so a
        plan input literally named ``inputs`` still binds by keyword.
        """
        values = self._bind(inputs, named)
        result = self._executor.execute_slots(self._entry.slot_plan, values)
        self._record(values, result)
        return result

    def run_batch(
        self, batches: Iterable[Mapping[str, InputValue]]
    ) -> List[ExecutionResult]:
        """Execute the plan once per input mapping (compile paid once)."""
        return [self.run(batch) for batch in batches]

    def bind(
        self,
        inputs: Optional[Mapping[str, InputValue]] = None,
        /,
        **named: InputValue,
    ) -> List[MatrixValue]:
        """Validate and coerce inputs into the plan's positional slot vector.

        The binding half of :meth:`run`, exposed for executors that bypass
        it — the serving tier binds here and then runs the instruction tape
        (:class:`repro.runtime.tape.TapePlan`) instead of the interpreter.
        Raises :class:`PlanBindingError` exactly as ``run`` would.
        """
        return self._bind(inputs, named)

    def __call__(self, **named: InputValue) -> ExecutionResult:
        return self.run(**named)

    # -- template instantiation ------------------------------------------------
    def instantiate(self, bindings: Mapping[str, int]) -> "CompiledPlan":
        """A plan for this computation at *different* dimension sizes.

        ``bindings`` maps this plan's dimension names (as declared in its
        source expression — e.g. ``{"m": 50_000}``) to new concrete sizes;
        unnamed dims keep their compiled sizes.  When the resized instance
        falls inside the template's guard, the returned plan shares this
        plan's artifact with only its sizes re-pinned — no saturation.

        Guard semantics: a plan owned by a :class:`~repro.api.Session` is
        instantiated through the session's normal compile path, so a guard
        miss *falls back to a fresh specialization* (a real compile at the
        new sizes, cached as usual) rather than failing.  A detached plan
        has nowhere to compile, so a guard miss raises
        :class:`TemplateGuardError`.
        """
        known = set(self.signature.dim_names)
        unknown = sorted(set(bindings) - known)
        if unknown:
            raise TemplateGuardError(
                f"unknown dimensions: {', '.join(unknown)}; "
                f"this plan's dims: {', '.join(sorted(known))}"
            )
        resized = rebind_dim_sizes(self.source, dict(bindings))
        signature = signature_of(resized)
        if signature.digest == self.fingerprint:
            return self
        session = self._session() if self._session is not None else None
        if session is not None:
            return session.compile(resized, signature)
        with self._lock:
            entry = self._entry
        if (
            entry.guard is None
            or signature.template_digest != entry.template_digest
            or not entry.guard.admits(signature)
        ):
            guard = entry.guard.describe() if entry.guard is not None else "exact"
            raise TemplateGuardError(
                f"instance {dict(bindings)} is outside this template's guard "
                f"({guard}) and the plan has no session to respecialize through"
            )
        specialized = specialize_entry(entry, signature)
        return CompiledPlan(
            specialized,
            signature,
            resized,
            session=None,
            cache_hit=True,
            template_hit=True,
            ring=self.ring,
        )

    # -- binding and validation ------------------------------------------------
    def _bind(
        self,
        inputs: Optional[Mapping[str, InputValue]],
        named: Mapping[str, InputValue],
    ) -> List[MatrixValue]:
        return bind_signature(self.signature, inputs, named)

    @staticmethod
    def _check_shape(
        spec: SlotSpec,
        name: str,
        value: MatrixValue,
        dim_sizes: Dict[str, Tuple[int, str]],
    ) -> None:
        _check_shape(spec, name, value, dim_sizes)

    # -- statistics and drift --------------------------------------------------
    def _record(self, values: List[MatrixValue], result: ExecutionResult) -> None:
        drifted: Dict[int, float] = {}
        session = self._session() if self._session is not None else None
        factor = getattr(session, "drift_factor", DEFAULT_DRIFT_FACTOR)
        alpha = getattr(session, "drift_alpha", DEFAULT_DRIFT_ALPHA)
        with self._lock:
            self.stats.executions += 1
            self.stats.total_elapsed += result.stats.elapsed
            self.stats.total_intermediate_cells += result.stats.intermediate_cells
            for spec, value in zip(self.signature.slots, values):
                if value.cells <= 1:
                    continue
                observed = value.sparsity
                self.stats.observed_sparsity[spec.index] = observed
                hint = spec.sparsity if spec.sparsity is not None else 1.0
                # Drift detection compares the *smoothed* observation, not
                # the last one: the per-slot EWMA is seeded at the compiled
                # hint, so a lone outlier moves it only `alpha` of the way
                # while a sustained regime change converges and trips the
                # factor within a few runs.
                previous = self.stats.smoothed_sparsity.get(spec.index, hint)
                smoothed = alpha * observed + (1.0 - alpha) * previous
                self.stats.smoothed_sparsity[spec.index] = smoothed
                # Expected nnz for *this* value: the compiled hint times the
                # actual cell count (shape checks already pinned concrete
                # dims, and for symbolic dims the hint still applies).
                cells = float(value.cells)
                expected_nnz = max(hint * cells, 1.0)
                smoothed_nnz = max(smoothed * cells, 1.0)
                if (
                    smoothed_nnz > expected_nnz * factor
                    or expected_nnz > smoothed_nnz * factor
                ):
                    drifted[spec.index] = observed
            if drifted:
                self.stats.drift_events += 1
        if drifted and session is not None and getattr(session, "auto_recompile", False):
            session._recompile_plan(self, drifted)

    def _adopt(
        self, entry: PlanEntry, signature: ExprSignature, source: la.LAExpr
    ) -> None:
        """Switch this plan to a re-optimized artifact (drift recompilation)."""
        with self._lock:
            self._entry = entry
            self.signature = signature
            self.source = source
            self.stats.recompiles += 1
            # The smoothed estimates described the *old* hints' regime; the
            # fresh artifact carries new hints, so smoothing restarts from
            # them on the next execution.
            self.stats.smoothed_sparsity.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledPlan {self.fingerprint[:12]} inputs={list(self.input_names)} "
            f"runs={self.stats.executions}>"
        )


def bind_signature(
    signature: ExprSignature,
    inputs: Optional[Mapping[str, InputValue]],
    named: Optional[Mapping[str, InputValue]] = None,
) -> List[MatrixValue]:
    """Validate and coerce named inputs into ``signature``'s slot vector.

    The signature is the authority on names: two requests that share a
    cached artifact but permute or rename inputs each bind through their
    *own* signature, never the compiling request's (the serving tier binds
    here directly, since its per-fingerprint state is shared by every twin
    of a shape).  Raises :class:`PlanBindingError` on missing, unknown, or
    shape-mismatched inputs.
    """
    provided: Dict[str, InputValue] = dict(inputs or {})
    provided.update(named or {})
    order = signature.var_order
    declared = set(order)
    missing = [name for name in order if name not in provided]
    if missing:
        raise PlanBindingError(f"missing inputs: {', '.join(sorted(missing))}")
    unknown = sorted(name for name in provided if name not in declared)
    if unknown:
        raise PlanBindingError(
            f"unknown inputs: {', '.join(unknown)}; "
            f"this plan binds: {', '.join(order)}"
        )
    values: List[MatrixValue] = []
    dim_sizes: Dict[str, Tuple[int, str]] = {}
    for spec, name in zip(signature.slots, order):
        try:
            value = as_value(provided[name])
        except Exception as error:
            raise PlanBindingError(f"cannot coerce input {name!r}: {error}") from error
        _check_shape(spec, name, value, dim_sizes)
        values.append(value)
    return values


def _check_shape(
    spec: SlotSpec,
    name: str,
    value: MatrixValue,
    dim_sizes: Dict[str, Tuple[int, str]],
) -> None:
    """Validate one value against its slot.

    Concrete compile-time sizes must match exactly.  Symbolic (unsized)
    dims are bound by the first input that carries them and every other
    input sharing the dim must agree — so ``X: m x n`` and ``u: m x 1``
    cannot silently disagree on ``m`` even when ``m`` has no declared
    size.
    """
    rows, cols = value.shape
    for axis, dim_name, expected, actual in (
        ("rows", spec.row_dim, spec.rows, rows),
        ("columns", spec.col_dim, spec.cols, cols),
    ):
        if expected is not None:
            if actual != expected:
                raise PlanBindingError(
                    f"input {name!r}: expected {expected} {axis}, got {actual} "
                    f"(compiled for {spec.describe()})"
                )
            if dim_name is not None:
                dim_sizes.setdefault(dim_name, (expected, name))
        elif dim_name is not None:
            bound = dim_sizes.get(dim_name)
            if bound is None:
                dim_sizes[dim_name] = (actual, name)
            elif bound[0] != actual:
                raise PlanBindingError(
                    f"input {name!r}: {axis} = {actual}, but dimension "
                    f"{dim_name!r} was bound to {bound[0]} by input {bound[1]!r}"
                )
