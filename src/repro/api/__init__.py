"""The compile-once / execute-many Session API.

This package is the stable user-facing surface of the reproduction, the
LaraDB-style separation of a *declared* program from its *optimized
physical plan*:

* :class:`Session` — owns the optimizer configuration and a thread-safe
  LRU plan cache keyed by the canonical structural fingerprint of the
  expression (:mod:`repro.canonical.fingerprint`): input names abstracted
  to slots, dimension sizes and sparsity hints in the key.  Compiling an
  already-seen workload shape is a cache probe, not a saturation run.
* :class:`CompiledPlan` — binds a request's input names to the cached
  slot-space artifact; ``plan.run(**inputs)`` validates shapes, executes
  via :mod:`repro.runtime`, and records per-plan statistics that trigger
  recompilation when observed input sparsity drifts off the compile-time
  hints.
* :class:`PlanStore` (``Session(store_path=...)``) — a persistent disk
  tier behind the in-memory cache (:mod:`repro.serialize`): compile misses
  probe memory → disk → compile and write back through, so a cold process
  pointed at a warm store skips saturation for every shape the fleet has
  already compiled.
* **Plan templates** — every compiled plan doubles as a size-polymorphic
  template: one compilation of a GLM at 10k×100 serves the whole size
  ladder (50k×100, 200k×100, ...) through cheap size re-pinning, as long
  as each instance stays inside the plan's
  :class:`~repro.optimizer.guards.TemplateGuard` (per-dim size ranges
  derived from cost dominance, plus the compile-time sparsity bands).  A
  guard miss silently falls back to a fresh specialization; see
  :mod:`repro.api.session` for the exact reuse-vs-respecialize rules and
  :meth:`CompiledPlan.instantiate` for the direct size-rebinding surface.

The legacy one-shot surface (``SporesOptimizer`` / ``optimize`` +
``repro.runtime.execute``) remains available and is now a thin shim over
the same pure :func:`repro.optimizer.compile_expression` core.
"""

from repro.api.cache import CacheStats, PlanCache
from repro.api.plan import (
    DEFAULT_DRIFT_ALPHA,
    DEFAULT_DRIFT_FACTOR,
    CompiledPlan,
    PlanBindingError,
    PlanEntry,
    PlanStats,
    TemplateGuardError,
    specialize_entry,
)
from repro.api.session import Session
from repro.optimizer.guards import DimGuard, TemplateGuard
from repro.serialize.store import PlanStore, StoreStats

__all__ = [
    "Session",
    "CompiledPlan",
    "PlanBindingError",
    "TemplateGuardError",
    "PlanEntry",
    "PlanStats",
    "PlanCache",
    "CacheStats",
    "PlanStore",
    "StoreStats",
    "TemplateGuard",
    "DimGuard",
    "specialize_entry",
    "DEFAULT_DRIFT_FACTOR",
    "DEFAULT_DRIFT_ALPHA",
]
