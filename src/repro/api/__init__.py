"""The compile-once / execute-many Session API.

This package is the stable user-facing surface of the reproduction, the
LaraDB-style separation of a *declared* program from its *optimized
physical plan*:

* :class:`Session` — owns the optimizer configuration and a thread-safe
  LRU plan cache keyed by the canonical structural fingerprint of the
  expression (:mod:`repro.canonical.fingerprint`): input names abstracted
  to slots, dimension sizes and sparsity hints in the key.  Compiling an
  already-seen workload shape is a cache probe, not a saturation run.
* :class:`CompiledPlan` — binds a request's input names to the cached
  slot-space artifact; ``plan.run(**inputs)`` validates shapes, executes
  via :mod:`repro.runtime`, and records per-plan statistics that trigger
  recompilation when observed input sparsity drifts off the compile-time
  hints.
* :class:`PlanStore` (``Session(store_path=...)``) — a persistent disk
  tier behind the in-memory cache (:mod:`repro.serialize`): compile misses
  probe memory → disk → compile and write back through, so a cold process
  pointed at a warm store skips saturation for every shape the fleet has
  already compiled.

The legacy one-shot surface (``SporesOptimizer`` / ``optimize`` +
``repro.runtime.execute``) remains available and is now a thin shim over
the same pure :func:`repro.optimizer.compile_expression` core.
"""

from repro.api.cache import CacheStats, PlanCache
from repro.api.plan import (
    DEFAULT_DRIFT_FACTOR,
    CompiledPlan,
    PlanBindingError,
    PlanEntry,
    PlanStats,
)
from repro.api.session import Session
from repro.serialize.store import PlanStore, StoreStats

__all__ = [
    "Session",
    "CompiledPlan",
    "PlanBindingError",
    "PlanEntry",
    "PlanStats",
    "PlanCache",
    "CacheStats",
    "PlanStore",
    "StoreStats",
    "DEFAULT_DRIFT_FACTOR",
]
