"""Thread-safe LRU cache for compiled plans, keyed by canonical fingerprint.

Compilation (lower → saturate → extract → lift) is orders of magnitude more
expensive than a cache probe, so a service that sees the same handful of
workload shapes over and over should pay for saturation once per shape.
The cache key is the canonical structural fingerprint of the expression
(:func:`repro.canonical.fingerprint.signature_of`): input names are
abstracted away, dimension sizes and sparsity hints are part of the key, so
"same shape of computation at the same data regime" is exactly one entry.

The cache is a plain LRU over an :class:`~collections.OrderedDict` guarded
by a re-entrant lock; hit/miss/eviction counts are exposed for monitoring
(and asserted on by the plan-cache tests and benchmark).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Iterable, List, Optional, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class CacheStats:
    """Counters describing how a :class:`PlanCache` has been used."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: plans recompiled because observed input statistics drifted away from
    #: the hints the cost model optimized under (maintained by the Session)
    recompiles: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.recompiles)

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.evictions + other.evictions,
            self.recompiles + other.recompiles,
        )

    @classmethod
    def aggregate(cls, parts: "Iterable[CacheStats]") -> "CacheStats":
        """Sum counters across cache segments (e.g. one per serving shard).

        Callers should pass :meth:`PlanCache.stats_snapshot` results, not
        live ``stats`` objects, so each segment's contribution is internally
        consistent; the sum is then a lock-free fleet-level view.
        """
        total = cls()
        for part in parts:
            total = total + part
        return total


class PlanCache(Generic[T]):
    """A bounded, thread-safe LRU mapping fingerprints to cached plans."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, T]" = OrderedDict()

    def lookup(self, key: str) -> Optional[T]:
        """Return the cached value and count a hit/miss; refreshes recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def insert(self, key: str, value: T) -> Tuple[T, bool]:
        """Insert ``value`` unless ``key`` is already present.

        Returns ``(entry, inserted)``: if another thread won the race the
        existing entry is returned and ``inserted`` is ``False``, so every
        caller ends up sharing one plan per fingerprint.  Evicts the least
        recently used entry when over capacity.
        """
        with self._lock:
            return self._insert_locked(key, value)

    def _insert_locked(self, key: str, value: T) -> Tuple[T, bool]:
        """Insert-or-share plus LRU eviction; the caller holds ``_lock``."""
        existing = self._entries.get(key)
        if existing is not None:
            self._entries.move_to_end(key)
            return existing, False
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value, True

    def lookup_after_miss(self, key: str) -> Optional[T]:
        """Re-probe after a counted miss, reclassifying it on a find.

        Used by the per-fingerprint compile path: if a concurrent compile of
        the same fingerprint won the race while this request waited, the
        request was ultimately served from the cache — the earlier miss is
        converted into a hit.  Returns ``None`` (and leaves the counters
        alone) when the entry genuinely has to be compiled.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self.stats.misses = max(0, self.stats.misses - 1)
            return entry

    def adopt_after_miss(self, key: str, value: T) -> Tuple[T, bool]:
        """Insert an entry recovered from a slower tier after a counted miss.

        The disk-tier counterpart of :meth:`lookup_after_miss`: the request
        missed the in-memory cache but was ultimately served from cached
        state (the persistent plan store), not a compile, so the earlier
        miss is reclassified as a hit and the entry is promoted into memory.
        Returns ``(entry, inserted)`` with the same race semantics as
        :meth:`insert` — if another thread promoted or compiled the key
        first, its entry wins and is shared.
        """
        with self._lock:
            self.stats.hits += 1
            self.stats.misses = max(0, self.stats.misses - 1)
            return self._insert_locked(key, value)

    def stats_snapshot(self) -> CacheStats:
        """A mutually consistent copy of the counters, taken under the lock.

        Reading the live :attr:`stats` fields one at a time can observe a
        torn update (a hit counted but a concurrent miss not yet); monitoring
        surfaces should always go through this snapshot.
        """
        with self._lock:
            return self.stats.snapshot()

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> List[str]:
        """Fingerprints currently cached, least recently used first."""
        with self._lock:
            return list(self._entries.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
