"""Thread-safe LRU cache for compiled plans, keyed by canonical fingerprint.

Compilation (lower → saturate → extract → lift) is orders of magnitude more
expensive than a cache probe, so a service that sees the same handful of
workload shapes over and over should pay for saturation once per shape.
The cache key is the canonical structural fingerprint of the expression
(:func:`repro.canonical.fingerprint.signature_of`): input names are
abstracted away, dimension sizes and sparsity hints are part of the key, so
"same shape of computation at the same data regime" is exactly one entry.

The cache is a plain LRU over an :class:`~collections.OrderedDict` guarded
by a re-entrant lock; hit/miss/eviction counts are exposed for monitoring
(and asserted on by the plan-cache tests and benchmark).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generic, Iterable, List, Optional, Tuple, TypeVar

from repro import obs

T = TypeVar("T")

# Global mirrors of the per-cache counters (no-ops until obs is enabled).
# CacheStats stays the per-instance, test-asserted record; these aggregate
# across every cache in the process for exposition.  Counters are
# monotonic, so the reclassification the local stats perform (a miss
# converted into a hit once a concurrent compile or a slower tier served
# the request) shows up here as: ``misses_total`` counts *initial* probe
# misses, ``hits_total`` counts requests ultimately served from cached
# state — the two deliberately overlap on reclassified requests.
_HITS = obs.registry().counter(
    "plan_cache_hits_total", "Plan-cache requests ultimately served from cached state"
)
_MISSES = obs.registry().counter(
    "plan_cache_misses_total", "Plan-cache initial probe misses"
)
_EVICTIONS = obs.registry().counter(
    "plan_cache_evictions_total", "Plan-cache LRU evictions"
)
_TEMPLATE_HITS = obs.registry().counter(
    "plan_cache_template_hits_total",
    "Instance misses served by specializing a cached plan template",
)


@dataclass
class CacheStats:
    """Counters describing how a :class:`PlanCache` has been used."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: plans recompiled because observed input statistics drifted away from
    #: the hints the cost model optimized under (maintained by the Session)
    recompiles: int = 0
    #: instance misses served by specializing a cached plan template of the
    #: same size-free digest (each also counts as a hit: the request was
    #: served from cached state, saturation was skipped)
    template_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.evictions, self.recompiles, self.template_hits
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.evictions + other.evictions,
            self.recompiles + other.recompiles,
            self.template_hits + other.template_hits,
        )

    @classmethod
    def aggregate(cls, parts: "Iterable[CacheStats]") -> "CacheStats":
        """Sum counters across cache segments (e.g. one per serving shard).

        Callers should pass :meth:`PlanCache.stats_snapshot` results, not
        live ``stats`` objects, so each segment's contribution is internally
        consistent; the sum is then a lock-free fleet-level view.
        """
        total = cls()
        for part in parts:
            total = total + part
        return total


class PlanCache(Generic[T]):
    """A bounded, thread-safe LRU mapping fingerprints to cached plans.

    Lookup is **two-level** since the plan-template refactor: the primary
    map is still instance-digest → entry, but every insert may also
    register its entry under a size-free *template* digest.  An instance
    miss can then scan :meth:`template_candidates` for a guarded template
    of the same shape and adopt a cheap specialization via
    :meth:`adopt_template_hit` — the caller (the Session) owns the guard
    check; the cache only maintains the index.  The template index holds
    no entries of its own: it tracks exactly the instance keys currently
    cached, so eviction and invalidation keep both levels consistent.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, T]" = OrderedDict()
        #: template digest -> instance keys currently cached (insert order)
        self._templates: Dict[str, "OrderedDict[str, None]"] = {}
        #: instance key -> template digest it is registered under
        self._template_of: Dict[str, str] = {}

    def lookup(self, key: str) -> Optional[T]:
        """Return the cached value and count a hit/miss; refreshes recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _HITS.inc()
            return entry

    def insert(
        self, key: str, value: T, template_key: Optional[str] = None
    ) -> Tuple[T, bool]:
        """Insert ``value`` unless ``key`` is already present.

        Returns ``(entry, inserted)``: if another thread won the race the
        existing entry is returned and ``inserted`` is ``False``, so every
        caller ends up sharing one plan per fingerprint.  Evicts the least
        recently used entry when over capacity.  ``template_key`` registers
        the entry in the template index so later instance misses of the
        same size-free shape can find it.
        """
        with self._lock:
            return self._insert_locked(key, value, template_key)

    def _insert_locked(
        self, key: str, value: T, template_key: Optional[str] = None
    ) -> Tuple[T, bool]:
        """Insert-or-share plus LRU eviction; the caller holds ``_lock``."""
        existing = self._entries.get(key)
        if existing is not None:
            self._entries.move_to_end(key)
            return existing, False
        self._entries[key] = value
        if template_key:
            self._templates.setdefault(template_key, OrderedDict())[key] = None
            self._template_of[key] = template_key
        while len(self._entries) > self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._unregister_template_locked(evicted_key)
            self.stats.evictions += 1
            _EVICTIONS.inc()
        return value, True

    def _unregister_template_locked(self, key: str) -> None:
        """Drop one instance key from the template index (lock held)."""
        template_key = self._template_of.pop(key, None)
        if template_key is None:
            return
        members = self._templates.get(template_key)
        if members is not None:
            members.pop(key, None)
            if not members:
                del self._templates[template_key]

    def template_candidates(self, template_key: str) -> List[T]:
        """Cached entries registered under a template digest, newest first.

        The caller scans these for one whose guard admits the requested
        instance; "newest first" makes the scan touch the most recently
        compiled (and most likely still-relevant) specialization first.
        """
        with self._lock:
            members = self._templates.get(template_key)
            if not members:
                return []
            return [
                self._entries[key]
                for key in reversed(members)
                if key in self._entries
            ]

    def adopt_template_hit(
        self, key: str, value: T, template_key: Optional[str] = None
    ) -> Tuple[T, bool]:
        """Insert a specialization derived from a cached plan template.

        The request missed the instance tier but was served by specializing
        a cached template — cached state, not a compile — so the counted
        miss is reclassified as a hit and ``template_hits`` records the
        two-level save.  Race semantics match :meth:`insert`.
        """
        with self._lock:
            self.stats.hits += 1
            self.stats.misses = max(0, self.stats.misses - 1)
            self.stats.template_hits += 1
            _HITS.inc()
            _TEMPLATE_HITS.inc()
            return self._insert_locked(key, value, template_key)

    def lookup_after_miss(self, key: str) -> Optional[T]:
        """Re-probe after a counted miss, reclassifying it on a find.

        Used by the per-fingerprint compile path: if a concurrent compile of
        the same fingerprint won the race while this request waited, the
        request was ultimately served from the cache — the earlier miss is
        converted into a hit.  Returns ``None`` (and leaves the counters
        alone) when the entry genuinely has to be compiled.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self.stats.misses = max(0, self.stats.misses - 1)
                _HITS.inc()
            return entry

    def adopt_after_miss(
        self, key: str, value: T, template_key: Optional[str] = None
    ) -> Tuple[T, bool]:
        """Insert an entry recovered from a slower tier after a counted miss.

        The disk-tier counterpart of :meth:`lookup_after_miss`: the request
        missed the in-memory cache but was ultimately served from cached
        state (the persistent plan store), not a compile, so the earlier
        miss is reclassified as a hit and the entry is promoted into memory.
        Returns ``(entry, inserted)`` with the same race semantics as
        :meth:`insert` — if another thread promoted or compiled the key
        first, its entry wins and is shared.
        """
        with self._lock:
            self.stats.hits += 1
            self.stats.misses = max(0, self.stats.misses - 1)
            _HITS.inc()
            return self._insert_locked(key, value, template_key)

    def stats_snapshot(self) -> CacheStats:
        """A mutually consistent copy of the counters, taken under the lock.

        Reading the live :attr:`stats` fields one at a time can observe a
        torn update (a hit counted but a concurrent miss not yet); monitoring
        surfaces should always go through this snapshot.
        """
        with self._lock:
            return self.stats.snapshot()

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self._unregister_template_locked(key)
            return present

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._templates.clear()
            self._template_of.clear()

    def keys(self) -> List[str]:
        """Fingerprints currently cached, least recently used first."""
        with self._lock:
            return list(self._entries.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
