"""The compile-once / execute-many Session.

A :class:`Session` is the stateful front door of the optimizer: it owns one
:class:`~repro.optimizer.OptimizerConfig`, one plan cache, and the locks
that make concurrent compilation safe.  The intended shape of a service
built on this package is one long-lived Session serving many requests:

>>> from repro import Matrix, Vector, Sum, Session
>>> session = Session()
>>> X = Matrix("X", 10_000, 1_000, sparsity=0.01)
>>> u, v = Vector("u", X.shape.rows), Vector("v", X.shape.cols)
>>> plan = session.compile(Sum((X - u @ v.T) ** 2))   # saturates once
>>> result = plan.run(X=x_values, u=u_values, v=v_values)
>>> plan2 = session.compile(Sum((X - u @ v.T) ** 2))  # cache hit, no work
>>> assert plan2.cache_hit

``compile`` fingerprints the expression canonically (names abstracted to
slots, dimension sizes and sparsity hints in the key) and only runs the
lower/saturate/extract/lift pipeline on a cache miss.  Per-fingerprint
in-flight locks guarantee that concurrent misses of the *same* shape
compile exactly once while different shapes compile in parallel.

Plans report the observed sparsity of every input back to the session; when
observation drifts beyond ``drift_factor`` of the hint the cost model
optimized under, the session recompiles the expression with the observed
statistics (quantized so near-identical observations share a fingerprint)
and atomically re-points the plan at the fresher artifact.

A session may also be given a **persistent plan store**
(``Session(store_path=...)``, a :class:`repro.serialize.PlanStore`
directory): a compile miss then probes memory → disk → compile, and every
freshly compiled plan is written back through both tiers.  A cold process
pointed at a warm store loads finished plans instead of re-paying
saturation — the cross-process extension of the same compile-once contract.

**Plan templates (guard semantics).**  Compiled plans are cached at two
levels: the exact *instance* digest (structure + concrete sizes + exact
sparsity hints) and the size-free *template* digest (structure + sparsity
bands).  An instance miss first scans cached templates of the same shape;
a template is **reused** — re-pinned to the requested sizes in one DAG
walk, no saturation — exactly when its
:class:`~repro.optimizer.guards.TemplateGuard` admits the instance: every
dimension size inside the guard's per-dim range *and* every input in the
sparsity band the template was compiled under.  Anything else (sizes
outside the probed cost-dominance region, a band change, a symbolic dim,
a plan whose rewrite baked a size into a constant, a v1 store entry) is a
guard miss and the expression is **respecialized**: compiled fresh at its
own sizes, cached as a new template of the same shape.  Both outcomes are
observable: reuse counts in ``CacheStats.template_hits`` and sets
``plan.template_hit``; respecialization counts in ``compilations``.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, Mapping, Optional, Union

from repro import obs
from repro.api.cache import CacheStats, PlanCache
from repro.api.plan import (
    DEFAULT_DRIFT_ALPHA,
    DEFAULT_DRIFT_FACTOR,
    CompiledPlan,
    InputValue,
    PlanEntry,
    specialize_entry,
)
from repro.canonical.fingerprint import ExprSignature, signature_of, slot_expression
from repro.lang import dag
from repro.lang import expr as la
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.guards import derive_guard
from repro.optimizer.pipeline import baseline_artifact, compile_expression
from repro.reliability.errors import ReliabilityError
from repro.reliability.faults import NO_FAULTS, FaultInjector
from repro.runtime.engine import ExecutionResult
from repro.serialize.store import PlanStore

logger = logging.getLogger(__name__)

# Session-level observability (no-ops until `repro.obs.enable()`).
_SESSION_COMPILATIONS = obs.registry().counter(
    "session_compilations_total", "Full pipeline runs across all sessions"
)
_SESSION_DEGRADED = obs.registry().counter(
    "session_degraded_total", "Compiles degraded to the unoptimized baseline plan"
)
_SESSION_DRIFT_RECOMPILES = obs.registry().counter(
    "session_drift_recompiles_total", "Plans recompiled after sparsity drift"
)


class Session:
    """Compiles LA expressions into reusable plans, caching by fingerprint."""

    def __init__(
        self,
        config: Optional[OptimizerConfig] = None,
        cache_size: int = 64,
        drift_factor: float = DEFAULT_DRIFT_FACTOR,
        drift_alpha: float = DEFAULT_DRIFT_ALPHA,
        auto_recompile: bool = True,
        store_path: Optional[Union[str, "os.PathLike"]] = None,
        store: Optional[PlanStore] = None,
        optimizer_budget: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        degrade_on_error: bool = False,
    ) -> None:
        if drift_factor <= 1.0:
            raise ValueError("drift_factor must be > 1")
        if not 0.0 < drift_alpha <= 1.0:
            raise ValueError("drift_alpha must be in (0, 1]")
        if store is not None and store_path is not None:
            raise ValueError("pass store_path or a PlanStore, not both")
        if optimizer_budget is not None and optimizer_budget <= 0:
            raise ValueError("optimizer_budget must be positive (or None)")
        self.config = config or OptimizerConfig()
        if store is not None and store.config_digest != self.config.digest():
            # A store salts its keys with the config it was built for; a
            # mismatched injection would either never hit or — worse — let
            # plans leak across configurations through a shared salt.
            raise ValueError(
                "injected PlanStore was built for a different optimizer "
                "configuration; construct it with this session's config "
                "(or pass store_path and let the session build it)"
            )
        self.cache: PlanCache[PlanEntry] = PlanCache(cache_size)
        self.drift_factor = drift_factor
        #: EWMA weight of the newest sparsity observation (1.0 = the legacy
        #: last-observation triggering)
        self.drift_alpha = drift_alpha
        self.auto_recompile = auto_recompile
        #: fault-injection schedule threaded through the session's own
        #: ``optimizer.saturate`` site and into a store the session builds
        #: itself; the no-op default keeps every site quiet
        self.faults = fault_injector or NO_FAULTS
        #: wall-clock budget (seconds) per compile; on overrun the session
        #: degrades to the unoptimized baseline plan instead of failing
        self.optimizer_budget = optimizer_budget
        #: degrade on *any* compile exception, not just budget overruns —
        #: the serving posture (a request is better served unoptimized than
        #: failed); off by default so development surfaces real defects
        self.degrade_on_error = degrade_on_error
        #: optional persistent tier probed on memory misses and written
        #: through on every compile; ``None`` keeps the session memory-only
        self.store = store if store is not None else (
            PlanStore(store_path, self.config, fault_injector=fault_injector)
            if store_path is not None
            else None
        )
        #: number of times the full pipeline actually ran (≠ cache misses
        #: under contention: concurrent misses of one shape compile once)
        self.compilations = 0
        #: compiles that fell back to the unoptimized baseline plan because
        #: the optimizer overran its budget or crashed
        self.degraded_compilations = 0
        self._state_lock = threading.Lock()
        #: per-fingerprint [lock, waiter-count] entries; an entry lives while
        #: any thread is inside the compile critical section for its key, so
        #: concurrent misses always serialize on one lock (even across a
        #: failed compile), and is removed when the last waiter leaves
        self._inflight: Dict[str, list] = {}

    # -- the public pair -------------------------------------------------------
    def compile(
        self, expr: la.LAExpr, signature: Optional[ExprSignature] = None
    ) -> CompiledPlan:
        """Return an executable plan for ``expr``, compiling at most once.

        A cache hit skips the whole pipeline — no lowering, no saturation,
        no extraction — and costs one fingerprint plus one dictionary probe.
        The returned plan binds *this* expression's input names, even when
        the cached artifact was compiled from a renamed twin.

        Callers that already fingerprinted ``expr`` (the serving engine
        hashes it to pick a shard before the shard's session ever sees it)
        pass the :class:`ExprSignature` along to skip the re-walk; it must
        be the signature *of this expression*, not of a twin — names ride
        on the signature, so a borrowed one would mis-bind the plan.
        """
        if signature is None:
            signature = signature_of(expr)
        entry = self.cache.lookup(signature.digest)
        hit = entry is not None
        template_hit = False
        if entry is None:
            entry, hit, template_hit = self._compile_entry(expr, signature)
        return CompiledPlan(
            entry,
            signature,
            expr,
            session=self,
            cache_hit=hit,
            template_hit=template_hit,
            ring=self.config.ring(),
        )

    def run(
        self,
        expr: la.LAExpr,
        inputs: Optional[Mapping[str, InputValue]] = None,
        /,
        **named: InputValue,
    ) -> ExecutionResult:
        """One-shot convenience: ``compile(expr).run(inputs)``."""
        return self.compile(expr).run(inputs, **named)

    # -- monitoring ------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Cache counters (hits, misses, evictions, drift recompiles)."""
        return self.cache.stats

    def describe(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of the session's state.

        The cache counters come from one snapshot taken under the cache
        lock, so hits/misses/hit_rate are mutually consistent even while
        other threads are compiling (reading the live fields one at a time
        could observe a hit counted whose miss conversion hadn't landed).
        """
        stats = self.cache.stats_snapshot()
        record: Dict[str, object] = {
            "cached_plans": len(self.cache),
            "capacity": self.cache.capacity,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "recompiles": stats.recompiles,
            "template_hits": stats.template_hits,
            "hit_rate": stats.hit_rate,
            "compilations": self.compilations,
            "degraded_compilations": self.degraded_compilations,
        }
        record["store"] = self.store.describe() if self.store is not None else None
        return record

    # -- compilation internals -------------------------------------------------
    def _compile_entry(
        self, expr: la.LAExpr, signature: ExprSignature
    ) -> "tuple[PlanEntry, bool, bool]":
        """Resolve an instance miss; returns ``(entry, hit, template_hit)``.

        Probe order, cheapest first, under a per-fingerprint lock:

        1. the instance cache again (a concurrent compile may have won);
        2. cached **plan templates** of the same size-free digest — a guard
           hit re-pins the template's sizes (one DAG walk, no saturation);
        3. the persistent store, by instance digest;
        4. the persistent store, by template digest (guard-checked the same
           way — a warm store compiled at *any* ladder point serves every
           admitted size in a cold process);
        5. a real compile, which also derives the new template's guard and
           writes both store tiers through.

        The double-checked probe means a thread that blocked behind the
        compiling thread comes back with the freshly cached entry instead
        of compiling again — ``hit`` is ``True`` for it.
        """
        key = signature.digest
        with self._state_lock:
            registration = self._inflight.setdefault(key, [threading.Lock(), 0])
            registration[1] += 1
        try:
            with registration[0]:
                entry = self.cache.lookup_after_miss(key)
                if entry is not None:
                    return entry, True, False
                entry = self._specialize_from_template(signature)
                if entry is not None:
                    return entry, True, True
                entry = self._load_from_store(key)
                if entry is not None:
                    return entry, True, False
                entry = self._load_template_from_store(signature)
                if entry is not None:
                    return entry, True, True
                degraded = False
                try:
                    artifact = compile_expression(
                        expr,
                        self.config,
                        faults=self.faults,
                        budget=self.optimizer_budget,
                    )
                    guard = derive_guard(signature, artifact, self.config)
                except Exception as error:
                    if not self._should_degrade(error):
                        raise
                    # Degraded mode: the optimizer overran its budget (or
                    # crashed) — serve the unoptimized baseline plan, which
                    # R_EQ guarantees computes the identical result.  The
                    # entry is cached (stability under sustained overload)
                    # but never persisted and never used as a template, so
                    # a restart or an eviction gives the optimizer another
                    # chance.
                    logger.warning(
                        "compile degraded to baseline plan for %s: %s",
                        key[:12],
                        error,
                    )
                    _SESSION_DEGRADED.inc()
                    artifact = baseline_artifact(expr, self.config)
                    guard = None
                    degraded = True
                entry = PlanEntry(
                    artifact=artifact,
                    slot_plan=slot_expression(artifact.fused, signature),
                    signature=signature,
                    guard=guard,
                    degraded=degraded,
                )
                entry, inserted = self.cache.insert(
                    key, entry, template_key=signature.template_digest
                )
                with self._state_lock:
                    self.compilations += 1
                    if degraded:
                        self.degraded_compilations += 1
                _SESSION_COMPILATIONS.inc()
                if inserted and not degraded and self.store is not None:
                    self._save_to_store(key, entry)
                return entry, False, False
        finally:
            with self._state_lock:
                registration[1] -= 1
                if registration[1] == 0 and self._inflight.get(key) is registration:
                    del self._inflight[key]

    def _specialize_from_template(
        self, signature: ExprSignature
    ) -> Optional[PlanEntry]:
        """Serve an instance miss from a cached template of the same shape.

        Scans the cache's template index (newest specialization first) for
        an entry whose guard admits the requested sizes and sparsity bands;
        on a hit the entry is re-pinned to the instance and promoted into
        the instance tier, with the counted miss reclassified as a
        (template) hit.  Returns ``None`` when no cached template admits
        the instance — the caller falls through to the store and, last, to
        a fresh specialization by compiling.
        """
        for candidate in self.cache.template_candidates(signature.template_digest):
            guard = candidate.guard
            if guard is not None and guard.admits(signature):
                specialized = specialize_entry(candidate, signature)
                adopted, _ = self.cache.adopt_template_hit(
                    signature.digest, specialized, signature.template_digest
                )
                return adopted
        return None

    def _should_degrade(self, error: BaseException) -> bool:
        """Whether a compile failure falls back to the baseline plan.

        Budget overruns and injected reliability faults always degrade —
        that is their contract.  Anything else (a genuine pipeline defect)
        degrades only under ``degrade_on_error``, the serving posture where
        an unoptimized answer beats a failed request.
        """
        return isinstance(error, ReliabilityError) or self.degrade_on_error

    def _save_to_store(self, key: str, entry: PlanEntry) -> None:
        """Write-through, demoted to skip-persist on any IO failure.

        The store already swallows and counts its own IO errors; this
        second line of defense keeps even an unexpected store defect from
        failing a request that holds a perfectly good in-memory plan.
        """
        try:
            self.store.save(key, entry)
        except OSError:
            pass

    def _load_from_store(self, key: str) -> Optional[PlanEntry]:
        """Probe the persistent tier after a memory miss.

        A disk hit extends :meth:`PlanCache.lookup_after_miss` semantics to
        the store: the request was served from cached state rather than a
        compile, so the entry is promoted into memory and the counted miss
        is reclassified as a hit.  Corrupt or incompatible entries load as
        ``None`` (the store counts them), and an IO failure escaping the
        store is demoted to a miss here — the caller falls through to
        compiling, so a damaged store never takes a request down.
        """
        if self.store is None:
            return None
        try:
            entry = self.store.load(key)
        except OSError:
            return None
        if entry is None:
            return None
        entry, _ = self.cache.adopt_after_miss(
            key, entry, template_key=entry.template_digest
        )
        return entry

    def _load_template_from_store(
        self, signature: ExprSignature
    ) -> Optional[PlanEntry]:
        """Probe the store's template tier and specialize on a guard hit.

        The cross-process half of plan templates: a warm store that holds
        *any* admitted ladder point of this shape serves this instance in a
        cold process — the loaded pivot's guard is checked exactly like a
        cached template's, then the pivot is re-pinned to the requested
        sizes and promoted into memory as a template hit.
        """
        if self.store is None or not signature.template_digest:
            return None
        try:
            pivot = self.store.load_template(signature.template_digest)
        except OSError:  # demoted to a template miss, same as _load_from_store
            return None
        if pivot is None:
            return None
        guard = pivot.guard
        if guard is None or not guard.admits(signature):
            return None
        specialized = specialize_entry(pivot, signature)
        adopted, _ = self.cache.adopt_template_hit(
            signature.digest, specialized, signature.template_digest
        )
        return adopted

    def _recompile_plan(self, plan: CompiledPlan, observed: Dict[int, float]) -> None:
        """Re-optimize a plan whose observed input nnz drifted off its hints.

        Builds a copy of the plan's source expression whose drifted inputs
        carry the *observed* sparsity (quantized to two significant digits
        so a stream of near-identical observations maps to one fingerprint),
        compiles it through the normal cached path, and re-points the plan.
        """
        slot_of = plan.signature.slot_of
        mapping: Dict[la.LAExpr, la.LAExpr] = {}
        for node in dag.postorder(plan.source):
            if isinstance(node, la.Var):
                slot = slot_of.get(node.name)
                if slot in observed:
                    hint = _quantize_sparsity(observed[slot])
                    mapping[node] = la.Var(node.name, node.var_shape, hint)
        if not mapping:
            return
        new_expr = dag.substitute(plan.source, mapping)
        new_signature = signature_of(new_expr)
        if new_signature.digest == plan.fingerprint:
            return  # quantization landed on the hints already in force
        entry = self.cache.lookup(new_signature.digest)
        if entry is None:
            entry, _, _ = self._compile_entry(new_expr, new_signature)
        plan._adopt(entry, new_signature, new_expr)
        logger.info(
            "drift recompile: plan %s -> %s (drifted slots: %s)",
            plan.fingerprint[:12],
            new_signature.digest[:12],
            sorted(observed),
        )
        _SESSION_DRIFT_RECOMPILES.inc()
        with self._state_lock:
            self.cache.stats.recompiles += 1


def _quantize_sparsity(value: float) -> float:
    """Bucket an observed sparsity to two significant digits in (0, 1]."""
    clamped = min(max(value, 1e-12), 1.0)
    return float(f"{clamped:.2g}")
