"""AST lock-discipline and nondeterminism linter.

Two families of checks over the package source (no imports, pure
:mod:`ast`):

**Lock discipline.**  A class that assigns ``self._lock = threading.Lock()``
(or ``RLock``/``Condition``; a ``Condition(self._lock)`` chained onto an
existing lock also counts) in ``__init__`` has opted into mutual exclusion.
The linter then infers which attributes that lock protects — every
attribute the class mutates at least once inside a ``with self._lock:``
block — and flags mutations of those attributes *outside* the lock.
Exempt: ``__init__``/``__post_init__`` (no concurrent observer exists yet)
and methods whose name ends in ``_locked`` (the caller-holds-the-lock
convention).

**Serving-path nondeterminism.**  Modules under the serving hot path
(:data:`HOT_PATH_PACKAGES`) must not call ``time.time`` — wall clock jumps
under NTP; deadlines and rate decisions belong to ``time.monotonic`` and
measurements to ``time.perf_counter`` — and must not draw from unseeded
RNGs (``np.random.default_rng()`` with no seed, ``random.Random()`` with no
seed, or the module-level ``random.*`` / legacy ``np.random.*`` globals),
which make serving behavior irreproducible across replays.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.report import Finding

PASS_NAME = "concurrency-lint"

#: constructors whose assignment to a ``self`` attribute marks a lock
LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: method calls that mutate their receiver in place
MUTATOR_METHODS = {
    "append", "add", "update", "pop", "popitem", "clear", "remove",
    "discard", "extend", "insert", "setdefault", "sort", "reverse",
}

#: packages (relative to the repro root) that form the serving hot path
HOT_PATH_PACKAGES = ("serve", "runtime")

#: methods exempt from the outside-the-lock check
_EXEMPT_METHODS = {"__init__", "__post_init__"}


def _finding(code: str, where: str, message: str) -> Finding:
    return Finding(pass_name=PASS_NAME, code=code, where=where, message=message)


def _is_self_attr(node: ast.AST, name: Optional[str] = None) -> Optional[str]:
    """The attribute name if ``node`` is ``self.<attr>`` (optionally a given one)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        if name is None or node.attr == name:
            return node.attr
    return None


def _is_lock_factory(node: ast.AST) -> bool:
    """Whether ``node`` is a call to ``threading.Lock/RLock/Condition``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in LOCK_FACTORIES:
        return True
    if isinstance(func, ast.Name) and func.id in LOCK_FACTORIES:
        return True
    return False


def _lock_attrs_of(cls: ast.ClassDef) -> Set[str]:
    """Lock-holding attributes assigned in the class's ``__init__``."""
    locks: Set[str] = set()
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name != "__init__":
            continue
        for stmt in ast.walk(item):
            if not isinstance(stmt, ast.Assign):
                continue
            if not _is_lock_factory(stmt.value):
                continue
            for target in stmt.targets:
                attr = _is_self_attr(target)
                if attr is not None:
                    locks.add(attr)
    return locks


def _mutated_attr(stmt: ast.AST) -> Optional[str]:
    """The ``self`` attribute a statement mutates, if any."""
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            attr = _is_self_attr(func.value)
            if attr is not None:
                return attr
            # one level of nesting: self._table[key].append(...)
            if isinstance(func.value, ast.Subscript):
                attr = _is_self_attr(func.value.value)
                if attr is not None:
                    return attr
        return None
    for target in targets:
        attr = _is_self_attr(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            attr = _is_self_attr(target.value)
            if attr is not None:
                return attr
    return None


#: one observed mutation: (method, attribute, under_lock, lineno)
_Mutation = Tuple[str, str, bool, int]


def _collect_mutations(
    cls: ast.ClassDef, lock_attrs: Set[str]
) -> List[_Mutation]:
    mutations: List[_Mutation] = []

    def scan(node: ast.AST, method: str, under: bool) -> None:
        for child in ast.iter_child_nodes(node):
            held = under
            if isinstance(child, ast.With):
                for item in child.items:
                    expr = item.context_expr
                    # `with self._lock:` and `with self._cond:` both hold
                    # the mutex (a Condition wraps its lock).
                    if any(_is_self_attr(expr, lock) for lock in lock_attrs):
                        held = True
            attr = _mutated_attr(child)
            if attr is not None:
                mutations.append((method, attr, held, getattr(child, "lineno", 0)))
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested defs run later, possibly on another thread; their
                # bodies are scanned as lock-free unless they take it.
                scan(child, method, False)
            else:
                scan(child, method, held)

    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan(item, item.name, False)
    return mutations


def lint_class_locking(cls: ast.ClassDef, where: str) -> List[Finding]:
    """Lock-discipline findings for one class definition."""
    lock_attrs = _lock_attrs_of(cls)
    if not lock_attrs:
        return []
    mutations = _collect_mutations(cls, lock_attrs)
    guarded = {
        attr
        for method, attr, held, _ in mutations
        if held and attr not in lock_attrs
    }
    findings: List[Finding] = []
    seen: Set[str] = set()
    for method, attr, held, lineno in mutations:
        if held or attr not in guarded:
            continue
        if method in _EXEMPT_METHODS or method.endswith("_locked"):
            continue
        key = f"{method}.{attr}"
        if key in seen:
            continue
        seen.add(key)
        findings.append(
            _finding(
                "unguarded-mutation",
                f"{where}::{cls.name}.{method}::{attr}",
                f"{attr!r} is mutated under {sorted(lock_attrs)} elsewhere in "
                f"{cls.name} but written lock-free here (line {lineno})",
            )
        )
    return findings


def _call_name(func: ast.AST) -> str:
    """Dotted name of a call target, best effort (``time.time``, ``Lock``)."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


#: module-level np.random globals that draw from the unseeded legacy RNG
_NP_GLOBAL_DRAWS = {
    "random", "rand", "randn", "randint", "choice", "shuffle", "permutation",
    "uniform", "normal",
}


def lint_nondeterminism(tree: ast.Module, where: str) -> List[Finding]:
    """Wall-clock and unseeded-RNG findings for one hot-path module."""
    findings: List[Finding] = []
    seen: Set[str] = set()

    def report(code: str, context: str, message: str) -> None:
        key = f"{code}:{context}"
        if key not in seen:
            seen.add(key)
            findings.append(_finding(code, f"{where}::{context}", message))

    scopes: List[Tuple[ast.AST, str]] = [(tree, "<module>")]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node, node.name))

    for scope, context in scopes:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name == "time.time":
                report(
                    "wall-clock-decision",
                    context,
                    "time.time() on the serving path — wall clock jumps "
                    "under NTP; use time.monotonic for deadlines, "
                    "time.perf_counter for measurement",
                    )
            elif name in ("np.random.default_rng", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    report(
                        "unseeded-random",
                        context,
                        "default_rng() without a seed on the serving path "
                        "makes replays irreproducible",
                    )
            elif name in ("random.Random",) and not node.args:
                report(
                    "unseeded-random",
                    context,
                    "random.Random() without a seed on the serving path",
                )
            elif name.startswith("random.") and name.split(".")[1] in (
                _NP_GLOBAL_DRAWS | {"getrandbits", "sample"}
            ):
                report(
                    "unseeded-random",
                    context,
                    f"{name}() draws from the process-global RNG",
                )
            elif (
                name.startswith(("np.random.", "numpy.random."))
                and name.split(".")[-1] in _NP_GLOBAL_DRAWS
            ):
                report(
                    "unseeded-random",
                    context,
                    f"{name}() draws from the legacy global RNG",
                )
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _module_where(path: str, root: str) -> str:
    return os.path.relpath(path, os.path.dirname(root)).replace(os.sep, "/")


def iter_source_files(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_source(source: str, where: str, hot_path: bool) -> List[Finding]:
    """All concurrency checks over one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [_finding("unparsable-module", where, f"cannot parse: {error}")]
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(lint_class_locking(node, where))
    if hot_path:
        findings.extend(lint_nondeterminism(tree, where))
    return findings


def run_concurrency_lint(
    root: Optional[str] = None,
) -> Tuple[List[Finding], Dict[str, int]]:
    """Lint every module under ``root`` (default: the installed package)."""
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    hot_prefixes = tuple(
        os.path.join(root, package) + os.sep for package in HOT_PATH_PACKAGES
    )
    findings: List[Finding] = []
    modules = 0
    for path in iter_source_files(root):
        modules += 1
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        where = _module_where(path, root)
        findings.extend(
            lint_source(source, where, hot_path=path.startswith(hot_prefixes))
        )
    return findings, {"modules": modules}
