"""Static analysis over the optimizer's trust boundary.

Three passes, one CLI (``python -m repro.analysis``):

* :mod:`repro.analysis.rules_audit` — differential soundness audit of both
  rewrite catalogs over four semirings, emitting the ring-dependence matrix
  (``analysis/rule_matrix.json``) the future semiring-generic engine gates
  rule sets by;
* :mod:`repro.analysis.plan_lint` — structural checks over LA expressions,
  :class:`~repro.api.plan.PlanEntry`\\ s, compiled tapes and whole plan
  stores, including the ``keep_only_improvements`` cost-monotonicity
  invariant;
* :mod:`repro.analysis.concurrency_lint` — AST lock-discipline and
  nondeterminism checks over the package source.

Findings are suppressed only through a justification-carrying baseline file
(:mod:`repro.analysis.report`); CI runs ``--check`` and fails on anything
new.
"""

from repro.analysis.report import AnalysisReport, Baseline, BaselineError, Finding
from repro.analysis.semiring import (
    AUDIT_SEMIRINGS,
    BOOL_OR_AND,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    SEMIRINGS_BY_NAME,
    Semiring,
)

__all__ = [
    "AnalysisReport",
    "AUDIT_SEMIRINGS",
    "Baseline",
    "BaselineError",
    "BOOL_OR_AND",
    "Finding",
    "MAX_TIMES",
    "MIN_PLUS",
    "REAL",
    "SEMIRINGS_BY_NAME",
    "Semiring",
]
