"""Backwards-compatible re-export of the promoted runtime semirings.

The ``Semiring`` protocol started life here as audit-only infrastructure.
Once the audit proved 87/100 rewrites any-semiring sound, the type moved to
:mod:`repro.runtime.semiring` so the execution engine could be parameterized
by ring; the analysis package keeps this alias so existing imports — the
audit itself, the committed matrix tooling, external callers — keep working.
"""

from __future__ import annotations

from repro.runtime.semiring import (
    AUDIT_SEMIRINGS,
    BOOL_OR_AND,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    SEMIRINGS_BY_NAME,
    Array,
    BinOp,
    RingLiteralError,
    Sampler,
    Semiring,
    UnknownSemiringError,
    capability_table,
    resolve_semiring,
)

__all__ = [
    "AUDIT_SEMIRINGS",
    "BOOL_OR_AND",
    "MAX_TIMES",
    "MIN_PLUS",
    "REAL",
    "SEMIRINGS_BY_NAME",
    "Array",
    "BinOp",
    "RingLiteralError",
    "Sampler",
    "Semiring",
    "UnknownSemiringError",
    "capability_table",
    "resolve_semiring",
]
