"""Known-bad fixtures proving every analysis pass can actually fail.

A static-analysis gate that has never flagged anything is indistinguishable
from one that cannot.  ``python -m repro.analysis --selftest`` runs each
pass against a seeded defect — a rewrite rule that drops a join factor, a
catalog pattern claiming ``X + Y = X * Y``, a class mutating guarded state
lock-free, wall-clock and unseeded-RNG calls on a hot path, a plan entry
whose optimized cost exceeds its original, a doctored tape, an RA plan with
shadowed and unbound Σ-indices, a corrupt store file — and succeeds only if
every fixture is flagged with the expected finding code.  CI runs it next
to ``--check``, so a pass silently going blind fails the build.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis import concurrency_lint, plan_lint, rules_audit
from repro.egraph.enode import OP_JOIN
from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Match, Rule
from repro.ra.attrs import Attr
from repro.ra.rexpr import RSum, RVar
from repro.rules.systemml_catalog import CatalogPattern


class DropSecondFactor(Rule):
    """Deliberately unsound: ``A * B = A`` (drops a join factor).

    Soundness:
        rings: any-semiring
    """

    name = "selftest-drop-factor"

    def search(self, egraph: EGraph, dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        matches: List[Match] = []
        for class_id in egraph.classes_with_op(OP_JOIN):
            class_id = egraph.find(class_id)
            for node in egraph.nodes(class_id):
                if node.op != OP_JOIN or len(node.children) < 2:
                    continue
                first = node.children[0]
                matches.append(
                    Match(
                        rule_name=self.name,
                        root=class_id,
                        key=(class_id, node.sort_key),
                        apply=self._applier(class_id, first),
                    )
                )
        return matches

    @staticmethod
    def _applier(class_id: int, first: int) -> Callable[[EGraph], bool]:
        def apply(egraph: EGraph) -> bool:
            from repro.egraph.analysis import SchemaMismatchError

            before = egraph.merges_performed
            try:
                # The schema analysis vetoes merges across schemas, so this
                # only lands on elementwise joins — still unsound in every
                # ring (A ⊙ B = A), which is the point of the fixture.
                egraph.merge(egraph.find(first), egraph.find(class_id))
            except SchemaMismatchError:
                return False
            return egraph.merges_performed != before

        return apply


#: a catalog pattern whose equation is false in every ring
BROKEN_PATTERN = CatalogPattern(
    method="SelftestBroken",
    lhs="X + Y",
    rhs="X * Y",
    soundness="any-semiring",
)


#: a class that guards ``_count`` in one method and races it in another
RACY_SOURCE = '''
import threading

class RacyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._count = 0  # racy: no lock
'''

#: hot-path module using the wall clock for a decision and an unseeded RNG
NONDETERMINISTIC_SOURCE = '''
import time
import numpy as np

def deadline_passed(deadline):
    return time.time() > deadline

def jitter():
    rng = np.random.default_rng()
    return rng.uniform()
'''


@dataclass
class FixtureResult:
    """One fixture, the finding code it must trigger, and what happened."""

    fixture: str
    expected_code: str
    fired: bool
    observed: Tuple[str, ...] = ()


def _codes(findings: Sequence[Any]) -> Tuple[str, ...]:
    return tuple(sorted({finding.code for finding in findings}))


def _check(fixture: str, expected: str, findings: Sequence[Any]) -> FixtureResult:
    codes = _codes(findings)
    return FixtureResult(fixture, expected, expected in codes, codes)


def run_selftest() -> List[FixtureResult]:
    """Run every fixture through its pass; all must be flagged."""
    results: List[FixtureResult] = []

    # rules-audit: an unsound relational rule declared sound everywhere.
    findings, _ = rules_audit.run_rules_audit(
        rules=[DropSecondFactor()], patterns=[], trials=1
    )
    results.append(_check("broken-relational-rule", "declaration-mismatch", findings))

    # rules-audit: a catalog pattern whose two sides differ.
    findings, _ = rules_audit.run_rules_audit(
        rules=[], patterns=[BROKEN_PATTERN], trials=1
    )
    results.append(_check("broken-catalog-pattern", "declaration-mismatch", findings))

    # concurrency-lint: guarded state mutated lock-free.
    findings = concurrency_lint.lint_source(RACY_SOURCE, "selftest/racy.py", hot_path=False)
    results.append(_check("racy-class", "unguarded-mutation", findings))

    # concurrency-lint: wall clock and unseeded RNG on a hot path.
    findings = concurrency_lint.lint_source(
        NONDETERMINISTIC_SOURCE, "selftest/hot.py", hot_path=True
    )
    results.append(_check("wall-clock-decision", "wall-clock-decision", findings))
    results.append(_check("unseeded-random", "unseeded-random", findings))

    # plan-lint: a committed entry whose optimized cost regressed.
    entry, _ = _compiled_entry()
    report = entry.artifact.report
    corrupt = dataclasses.replace(
        entry,
        artifact=dataclasses.replace(
            entry.artifact,
            report=dataclasses.replace(
                report,
                original_cost=1.0,
                optimized_cost=2.0,
            ),
        ),
    )
    findings = plan_lint.lint_entry(corrupt, "selftest/cost")
    results.append(_check("cost-regression", "cost-regression", findings))

    # plan-lint: a sparsity hint no probability could have produced.
    bad_sparsity, _ = _compiled_entry()
    doctored_var = None
    for node in bad_sparsity.slot_plan.walk():
        if type(node).__name__ == "Var":
            doctored_var = node
            break
    assert doctored_var is not None
    object.__setattr__(doctored_var, "sparsity", 1.5)
    findings = plan_lint.lint_expr(bad_sparsity.slot_plan, "selftest/sparsity")
    object.__setattr__(doctored_var, "sparsity", None)
    results.append(_check("bad-sparsity", "sparsity-out-of-range", findings))

    # plan-lint: a tape with a step bolted on after the root.
    entry, n_slots = _compiled_entry()
    from repro.runtime.tape import TapePlan

    tape = TapePlan(entry.slot_plan, n_slots)
    tape._steps.append(lambda vals: vals[0])
    tape._slot_deps.append(())
    tape._step_nodes.append(None)
    findings = plan_lint.lint_tape(tape, "selftest/tape")
    results.append(_check("doctored-tape", "dead-tape-step", findings))

    # plan-lint: shadowed and unbound Σ-indices.
    i, j, k = Attr("i", 2), Attr("j", 3), Attr("k", 4)
    a = RVar("A", (i, j))
    shadowed = RSum(frozenset((i,)), RSum(frozenset((i, j)), a))
    findings = plan_lint.lint_rexpr(shadowed, "selftest/ra")
    results.append(_check("shadowed-sum-index", "shadowed-sum-index", findings))
    findings = plan_lint.lint_rexpr(RSum(frozenset((k,)), a), "selftest/ra")
    results.append(_check("unbound-sum-index", "unbound-sum-index", findings))

    # plan-lint: a generated fused module whose META region counts drifted
    # from the region plan it claims to implement (a stale/doctored cached
    # source).
    from repro.runtime.codegen import emit_source, plan_regions

    entry, n_slots = _compiled_entry()
    region_plan = plan_regions(entry.slot_plan, n_slots, None)
    source = emit_source(region_plan, "real")
    namespace: dict = {}
    exec(compile(source, "<selftest-codegen>", "exec"), namespace)  # noqa: S102
    doctored_meta = dict(namespace["META"])
    doctored_meta["regions"] = doctored_meta["regions"] + 1  # type: ignore[operator]
    findings = plan_lint.lint_generated_source(
        source,
        doctored_meta,
        len(region_plan.regions),
        region_plan.fused_regions,
        "selftest/codegen",
    )
    results.append(_check("doctored-codegen-meta", "codegen-region-drift", findings))

    # plan-lint: a store file that does not decode.
    with tempfile.TemporaryDirectory() as tmp:
        with open(os.path.join(tmp, "deadbeef.json"), "w", encoding="utf-8") as f:
            f.write("{not json")
        findings = plan_lint.lint_store_dir(tmp, where_prefix="selftest/")
    results.append(_check("corrupt-store-file", "unreadable-entry", findings))

    return results


_ENTRY_CACHE: Optional[Any] = None


def _compiled_entry() -> Tuple[Any, int]:
    """One genuinely compiled plan entry (cached per process)."""
    global _ENTRY_CACHE
    if _ENTRY_CACHE is None:
        from repro.api.session import Session
        from repro.lang import Dim, Matrix
        from repro.lang import expr as la

        m, n = Dim("sf_m", 8), Dim("sf_n", 6)
        x = Matrix("X", m, n, sparsity=0.5)
        y = Matrix("Y", m, n, sparsity=0.5)
        session = Session()
        session.compile(la.Sum(x * y))
        _ENTRY_CACHE = session.cache.lookup(session.cache.keys()[0])
    entry = _ENTRY_CACHE
    return entry, len(entry.signature.slots)


def format_results(results: List[FixtureResult]) -> str:
    lines = ["analysis selftest: every pass must flag its seeded defect"]
    for result in results:
        status = "ok " if result.fired else "MISSED"
        lines.append(
            f"  {status:>6}  {result.fixture}: expected {result.expected_code!r}, "
            f"observed {list(result.observed)}"
        )
    failed = sum(1 for result in results if not result.fired)
    lines.append(
        f"selftest {'passed' if not failed else 'FAILED'}: "
        f"{len(results) - failed}/{len(results)} fixtures flagged"
    )
    return "\n".join(lines)
