"""Semiring-generic evaluators for RA plans and LA expressions.

Two oracles drive the differential rule audit:

* :func:`evaluate_rexpr` generalizes the K-relation reference interpreter
  (:mod:`repro.runtime.ra_interp`) from (+, ×) to an arbitrary
  :class:`~repro.analysis.semiring.Semiring`: join combines aligned tensors
  with ⊗, union with ⊕, and Σ is the ring's ⊕-reduction.  Aggregating an
  index the child does not mention multiplies by ``from_int(|i|)`` — the
  counting-literal reading of the paper's ``Σ_i A = A · dim(i)``.
* :func:`evaluate_laexpr` evaluates a linear-algebra expression directly
  (matmul as ⊕-over-⊗, element-wise ops as ring ops), which is what checks
  the SystemML catalog patterns whose surface syntax never lowers to RA.

Operators outside a ring's fragment — subtraction without additive
inverses, division without ⊗-inverses, transcendental functions anywhere
but the reals — raise :class:`RingUnsupported`; the auditor records the
pattern as *unsupported* in that ring rather than unsound.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.semiring import Array, Semiring
from repro.lang import expr as la
from repro.ra.attrs import Attr
from repro.ra.rexpr import RAdd, RExpr, RJoin, RLit, RSum, RVar
from repro.translate.lower import ONES_PREFIX


class RingUnsupported(Exception):
    """The expression uses an operator outside this semiring's fragment."""


class EvaluationError(RuntimeError):
    """The expression cannot be evaluated at all (missing input, bad arity)."""


def interpret_literal(ring: Semiring, value: float) -> float:
    """Interpret a numeric literal inside ``ring``.

    Non-negative integers go through the ℕ → S homomorphism
    (:meth:`Semiring.from_int`); anything else only means something in a
    ring with subtraction and division, i.e. the reals.
    """
    if float(value).is_integer() and value >= 0:
        return ring.from_int(int(value))
    if ring.has_subtraction and ring.has_division:
        return float(value)
    raise RingUnsupported(
        f"literal {value!r} has no ℕ-homomorphism reading in ring {ring.name!r}"
    )


# ---------------------------------------------------------------------------
# RA plans (the e-graph term language)
# ---------------------------------------------------------------------------

#: a tensor plus the attribute name carried by each axis (sorted)
Labelled = Tuple[Array, Tuple[str, ...]]


def evaluate_rexpr(
    node: RExpr,
    ring: Semiring,
    inputs: Mapping[str, Array],
    attr_sizes: Mapping[str, int],
) -> Labelled:
    """Evaluate an RA expression over ``ring`` (axes sorted by attribute)."""
    if isinstance(node, RLit):
        return np.asarray(interpret_literal(ring, node.value)), ()
    if isinstance(node, RVar):
        names = tuple(attr.name for attr in node.attrs)
        if node.name.startswith(ONES_PREFIX):
            shape = tuple(_extent(attr, attr_sizes) for attr in node.attrs)
            return ring.fill(shape, ring.one), names
        if node.name not in inputs:
            raise EvaluationError(f"no input bound to tensor {node.name!r}")
        array = np.asarray(inputs[node.name], dtype=np.float64)
        if array.ndim != len(names):
            raise EvaluationError(
                f"input {node.name!r} has {array.ndim} axes, plan binds {len(names)}"
            )
        return array, names
    if isinstance(node, RJoin):
        parts = [evaluate_rexpr(arg, ring, inputs, attr_sizes) for arg in node.args]
        return _combine(parts, ring.mul)
    if isinstance(node, RAdd):
        parts = [evaluate_rexpr(arg, ring, inputs, attr_sizes) for arg in node.args]
        return _combine(parts, ring.add)
    if isinstance(node, RSum):
        value, axes = evaluate_rexpr(node.child, ring, inputs, attr_sizes)
        agg_names = {attr.name for attr in node.indices}
        keep = tuple(i for i, name in enumerate(axes) if name not in agg_names)
        drop = tuple(i for i, name in enumerate(axes) if name in agg_names)
        result = ring.aggregate(value, axis=drop) if drop else value
        # Σ_i over an expression that does not mention i is an |i|-fold ⊕.
        absent = 1
        for attr in node.indices:
            if attr.name not in axes:
                absent *= _extent(attr, attr_sizes)
        if absent != 1:
            result = ring.mul(result, np.asarray(ring.from_int(absent)))
        return np.asarray(result), tuple(axes[i] for i in keep)
    raise EvaluationError(f"cannot evaluate {type(node).__name__}")


def _extent(attr: Attr, attr_sizes: Mapping[str, int]) -> int:
    if attr.name in attr_sizes:
        return attr_sizes[attr.name]
    if attr.size is not None:
        return attr.size
    raise EvaluationError(f"unknown extent for attribute {attr.name!r}")


def _combine(parts: List[Labelled], op: Callable[[Array, Array], Array]) -> Labelled:
    all_names = sorted({name for _, names in parts for name in names})
    aligned = [_align(value, names, all_names) for value, names in parts]
    result = aligned[0]
    for other in aligned[1:]:
        result = op(result, other)
    return result, tuple(all_names)


def _align(value: Array, names: Tuple[str, ...], target: List[str]) -> Array:
    order = sorted(range(len(names)), key=lambda i: names[i])
    value = np.transpose(value, order) if names else value
    sorted_names = [names[i] for i in order]
    shape = []
    axis = 0
    for name in target:
        if axis < len(sorted_names) and sorted_names[axis] == name:
            shape.append(value.shape[axis])
            axis += 1
        else:
            shape.append(1)
    return value.reshape(shape) if target else value


# ---------------------------------------------------------------------------
# LA expressions (the surface language of the SystemML catalog)
# ---------------------------------------------------------------------------


def shape_of(node: la.LAExpr) -> Tuple[int, int]:
    """Concrete (rows, cols) of an LA expression (unit dims are 1)."""
    shape = node.shape
    return (shape.rows.size or 1, shape.cols.size or 1)


def sample_la_inputs(
    exprs: List[la.LAExpr], ring: Semiring, rng: np.random.Generator
) -> Dict[str, Array]:
    """Sparsity-respecting input samples for every ``Var`` under ``exprs``."""
    inputs: Dict[str, Array] = {}
    for root in exprs:
        for node in root.walk():
            if isinstance(node, la.Var) and node.name not in inputs:
                rows = node.var_shape.rows.size or 1
                cols = node.var_shape.cols.size or 1
                inputs[node.name] = ring.sample_sparse(rng, (rows, cols), node.sparsity)
    return inputs


def evaluate_laexpr(
    node: la.LAExpr, ring: Semiring, inputs: Mapping[str, Array]
) -> Array:
    """Evaluate an LA expression over ``ring``; result is always 2-D."""
    if isinstance(node, la.Var):
        if node.name not in inputs:
            raise EvaluationError(f"no input bound to {node.name!r}")
        return np.asarray(inputs[node.name], dtype=np.float64)
    if isinstance(node, la.Literal):
        return np.asarray([[interpret_literal(ring, node.value)]])
    if isinstance(node, la.FilledMatrix):
        return ring.fill(shape_of(node), interpret_literal(ring, node.value))
    if isinstance(node, la.MatMul):
        left = evaluate_laexpr(node.left, ring, inputs)
        right = evaluate_laexpr(node.right, ring, inputs)
        return ring.aggregate(ring.mul(left[:, :, None], right[None, :, :]), axis=1)
    if isinstance(node, la.ElemMul):
        return ring.mul(
            evaluate_laexpr(node.left, ring, inputs),
            evaluate_laexpr(node.right, ring, inputs),
        )
    if isinstance(node, la.ElemPlus):
        return ring.add(
            evaluate_laexpr(node.left, ring, inputs),
            evaluate_laexpr(node.right, ring, inputs),
        )
    if isinstance(node, la.ElemMinus):
        if ring.sub is None:
            raise RingUnsupported(f"ring {ring.name!r} has no subtraction")
        return ring.sub(
            evaluate_laexpr(node.left, ring, inputs),
            evaluate_laexpr(node.right, ring, inputs),
        )
    if isinstance(node, la.ElemDiv):
        if ring.div is None:
            raise RingUnsupported(f"ring {ring.name!r} has no division")
        return ring.div(
            evaluate_laexpr(node.left, ring, inputs),
            evaluate_laexpr(node.right, ring, inputs),
        )
    if isinstance(node, la.Neg):
        if ring.sub is None:
            raise RingUnsupported(f"ring {ring.name!r} has no additive inverses")
        return ring.sub(
            np.asarray(ring.zero), evaluate_laexpr(node.child, ring, inputs)
        )
    if isinstance(node, la.Transpose):
        return evaluate_laexpr(node.child, ring, inputs).T
    if isinstance(node, la.RowSums):
        return ring.aggregate(
            evaluate_laexpr(node.child, ring, inputs), axis=1, keepdims=True
        )
    if isinstance(node, la.ColSums):
        return ring.aggregate(
            evaluate_laexpr(node.child, ring, inputs), axis=0, keepdims=True
        )
    if isinstance(node, la.Sum):
        return ring.aggregate(
            evaluate_laexpr(node.child, ring, inputs), axis=(0, 1), keepdims=True
        )
    if isinstance(node, la.Power):
        base = evaluate_laexpr(node.child, ring, inputs)
        exponent = node.exponent
        if float(exponent).is_integer() and exponent >= 1:
            result = base
            for _ in range(int(exponent) - 1):
                result = ring.mul(result, base)
            return result
        if exponent == 0:
            return ring.fill(base.shape, ring.one)
        if ring.name == "real":
            return np.power(base, exponent)
        raise RingUnsupported(
            f"exponent {exponent!r} has no ⊗-iteration reading in {ring.name!r}"
        )
    if isinstance(node, la.CastScalar):
        value = evaluate_laexpr(node.child, ring, inputs)
        if value.size != 1:
            raise EvaluationError("as.scalar of a non-1x1 value")
        return value.reshape(1, 1)
    if isinstance(node, la.UnaryFunc):
        if ring.name != "real":
            raise RingUnsupported(
                f"unary {node.func!r} is transcendental — real-only"
            )
        func = _UNARY_NUMPY.get(node.func)
        if func is None:
            raise EvaluationError(f"no numpy mapping for unary {node.func!r}")
        return func(evaluate_laexpr(node.child, ring, inputs))
    # Fused physical operators never appear in the audited source patterns.
    raise RingUnsupported(
        f"{type(node).__name__} is a physical operator outside the audit fragment"
    )


def _sigmoid(array: Array) -> Array:
    return 1.0 / (1.0 + np.exp(-array))


_UNARY_NUMPY: Dict[str, Callable[[Array], Array]] = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "sign": np.sign,
    "sigmoid": _sigmoid,
    "round": np.round,
}


def sample_rexpr_inputs(
    node: RExpr,
    ring: Semiring,
    rng: np.random.Generator,
    attr_sizes: Mapping[str, int],
    sparsity: Optional[Mapping[str, float]] = None,
) -> Dict[str, Array]:
    """Input samples for every non-synthetic ``RVar`` under ``node``."""
    inputs: Dict[str, Array] = {}

    def visit(expr: RExpr) -> None:
        if isinstance(expr, RVar):
            if expr.name.startswith(ONES_PREFIX) or expr.name in inputs:
                return
            shape = tuple(_extent(attr, attr_sizes) for attr in expr.attrs)
            hint = expr.sparsity
            if sparsity is not None and expr.name in sparsity:
                hint = sparsity[expr.name]
            inputs[expr.name] = ring.sample_sparse(rng, shape, hint)
        elif isinstance(expr, (RJoin, RAdd)):
            for arg in expr.args:
                visit(arg)
        elif isinstance(expr, RSum):
            visit(expr.child)

    visit(node)
    return inputs
