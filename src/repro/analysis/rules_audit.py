"""Differential soundness audit of both rewrite catalogs.

For every rule the audit answers one question per semiring: *does the
rewrite preserve the value of the plan?*  Two harnesses:

* **Relational rules** (R_EQ, :mod:`repro.rules.relational`) are audited
  through the e-graph itself.  Each rule is applied — alone — to a pool of
  candidate RA expressions chosen so every rule fires on at least one; the
  saturated class is then *enumerated* (bounded, acyclic) and every term the
  rule made equal to the original is re-evaluated over each semiring on
  seeded random inputs.  A term that disagrees indicts exactly the audited
  rule, because no other rule touched the graph.
* **Catalog patterns** (:mod:`repro.rules.systemml_catalog`) carry their
  left- and right-hand sides syntactically, so both sides are evaluated
  directly with the semiring-generic LA evaluator.

Each rule must also *declare* its side conditions — a ``Soundness:`` stanza
in the rule class docstring, or the ``soundness`` field of a
:class:`~repro.rules.systemml_catalog.CatalogPattern`.  The audit parses the
declaration, predicts the sound semirings from the capability table, and
fails when prediction and measurement disagree (or the declaration is
missing).  The result is the per-rule ring-dependence matrix persisted as
``analysis/rule_matrix.json``.

Declaration mini-language::

    Soundness:
        rings: any-semiring            # or: real-only | <ring, ring, ...>
        needs: commutativity, counting-literals

``needs`` tokens from :data:`KNOWN_NEEDS`; ``subtraction``, ``division`` and
``idempotence`` restrict the predicted set through the capability flags, the
rest (``associativity``, ``commutativity``, ``distributivity``,
``counting-literals``, ``annihilation``) hold in every audited ring and are
kept as machine-readable documentation.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.evaluate import (
    RingUnsupported,
    evaluate_laexpr,
    evaluate_rexpr,
    sample_la_inputs,
    sample_rexpr_inputs,
)
from repro.analysis.report import Finding
from repro.analysis.semiring import AUDIT_SEMIRINGS, Semiring, capability_table
from repro.egraph.enode import OP_ADD, OP_JOIN, OP_LIT, OP_SUM, OP_VAR
from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Rule
from repro.ra.attrs import Attr
from repro.ra.rexpr import RAdd, RExpr, RJoin, RLit, RSum, RVar
from repro.rules.relational import relational_rules
from repro.rules.systemml_catalog import CatalogPattern, all_patterns, make_env


PASS_NAME = "rules-audit"

#: tokens a Soundness declaration may list under ``needs:``
KNOWN_NEEDS = frozenset(
    {
        "subtraction",
        "division",
        "idempotence",
        "associativity",
        "commutativity",
        "distributivity",
        "counting-literals",
        "annihilation",
    }
)

_STANZA = re.compile(
    r"Soundness:\s*\n\s*rings:\s*(?P<rings>[^\n]+)"
    r"(?:\n\s*needs:\s*(?P<needs>[^\n]+))?",
)


@dataclass(frozen=True)
class SoundnessClaim:
    """A parsed ``Soundness:`` declaration."""

    rings: str
    needs: Tuple[str, ...] = ()

    def predicted(self, semirings: Sequence[Semiring]) -> FrozenSet[str]:
        names = {ring.name for ring in semirings}
        clause = self.rings.strip()
        if clause == "any-semiring":
            base = set(names)
        elif clause == "real-only":
            base = {"real"} & names
        else:
            base = {token.strip() for token in clause.split(",")} & names
        for need in self.needs:
            if need == "subtraction":
                base &= {r.name for r in semirings if r.has_subtraction}
            elif need == "division":
                base &= {r.name for r in semirings if r.has_division}
            elif need == "idempotence":
                base &= {r.name for r in semirings if r.idempotent}
        return frozenset(base)


def parse_soundness(text: Optional[str]) -> Optional[SoundnessClaim]:
    """Parse a declaration out of a docstring or a ``soundness`` field."""
    if not text:
        return None
    if "Soundness:" in text:
        match = _STANZA.search(text)
        if match is None:
            return None
        rings = match.group("rings").strip()
        needs_text = match.group("needs") or ""
    elif "\n" in text:
        # A docstring without a stanza is an undeclared rule, not a
        # compact declaration.
        return None
    else:
        # Compact field form: "<rings>[; needs: a, b]"
        parts = text.split(";")
        rings = parts[0].strip()
        needs_text = ""
        for part in parts[1:]:
            part = part.strip()
            if part.startswith("needs:"):
                needs_text = part[len("needs:"):]
    needs = tuple(
        token.strip() for token in needs_text.split(",") if token.strip()
    )
    if not rings:
        return None
    return SoundnessClaim(rings=rings, needs=needs)


@dataclass
class RuleVerdict:
    """The measured four-semiring verdict for one rule or pattern."""

    kind: str  # "relational" | "catalog"
    name: str
    status: Dict[str, str] = field(default_factory=dict)  # ring → sound|unsound|unsupported
    declared: Optional[SoundnessClaim] = None
    candidates_matched: int = 0
    terms_checked: int = 0
    detail: str = ""

    @property
    def sound_over(self) -> List[str]:
        return [name for name, status in self.status.items() if status == "sound"]

    def classified(self) -> bool:
        return len(self.status) == len(AUDIT_SEMIRINGS)

    def to_dict(self) -> Dict[str, object]:
        requires = {
            "subtraction": False,
            "multiplicative_inverse": False,
            "idempotence": False,
            "commutativity": False,
            "counting_literals": False,
        }
        if self.declared is not None:
            requires["subtraction"] = "subtraction" in self.declared.needs
            requires["multiplicative_inverse"] = "division" in self.declared.needs
            requires["idempotence"] = "idempotence" in self.declared.needs
            requires["commutativity"] = "commutativity" in self.declared.needs
            requires["counting_literals"] = "counting-literals" in self.declared.needs
        return {
            "kind": self.kind,
            "sound_over": sorted(self.sound_over),
            "unsupported_in": sorted(
                name for name, status in self.status.items() if status == "unsupported"
            ),
            "unsound_in": sorted(
                name for name, status in self.status.items() if status == "unsound"
            ),
            "requires": requires,
            "declared": (
                {"rings": self.declared.rings, "needs": list(self.declared.needs)}
                if self.declared is not None
                else None
            ),
            "candidates_matched": self.candidates_matched,
            "terms_checked": self.terms_checked,
        }


# ---------------------------------------------------------------------------
# Relational harness: candidates, application, bounded term enumeration
# ---------------------------------------------------------------------------

_I = Attr("i", 2)
_J = Attr("j", 3)
_K = Attr("k", 2)

ATTR_SIZES: Dict[str, int] = {"i": 2, "j": 3, "k": 2}

_A = RVar("A", (_I, _J))
_B = RVar("B", (_J, _K))
_C = RVar("C", (_I, _J))
_U = RVar("u", (_J,))
_W = RVar("w", (_K,))
_P = RVar("p", (_I,), 0.5)
_XS = RVar("xs", (_I, _J), 0.3)


def candidate_pool() -> List[Tuple[str, RExpr]]:
    """Hand-picked RA expressions guaranteeing every R_EQ rule a match.

    Raw constructors (not the folding smart constructors) keep joins and
    unions nested so the flatten rules have something to do.
    """
    ones_i = RVar("__ones__i", (_I,))
    return [
        ("nested-join", RJoin((_A, RJoin((_B, _W))))),
        ("nested-add", RAdd((_A, RAdd((_C, _A))))),
        ("join-over-add", RJoin((_U, RAdd((_A, _C))))),
        ("factorable-add", RAdd((RJoin((_A, _U)), RJoin((_C, _U))))),
        ("repeat-add", RAdd((_A, _A))),
        ("sum-of-add", RSum(frozenset({_I}), RAdd((_A, _C)))),
        ("add-of-sums", RAdd((RSum(frozenset({_I}), _A), RSum(frozenset({_I}), _C)))),
        ("sum-of-join", RSum(frozenset({_I, _K}), RJoin((_A, _B)))),
        ("join-with-sum", RJoin((_W, RSum(frozenset({_I}), _A)))),
        ("nested-sums", RSum(frozenset({_I}), RSum(frozenset({_J}), _A))),
        ("unused-index", RSum(frozenset({_K}), _A)),
        ("identity-join", RJoin((RLit(1.0), _A))),
        # Unions must be schema-compatible, so the + 0 identity only ever
        # appears between scalars.
        ("identity-add", RAdd((RLit(0.0), RVar("s", ())))),
        ("ones-join", RJoin((ones_i, RJoin((_A, _U))))),
        ("sparse-factor", RAdd((RJoin((_P, _XS)), RJoin((_P, RJoin((_P, _XS))))))),
        ("deep-mixed", RSum(frozenset({_J}), RJoin((_A, RAdd((_U, _U)))))),
    ]


def enumerate_terms(
    egraph: EGraph,
    class_id: int,
    per_class: int = 3,
    total: int = 48,
) -> List[RExpr]:
    """Bounded, acyclic enumeration of representative terms of a class."""

    def terms_of(cid: int, path: FrozenSet[int]) -> List[RExpr]:
        cid = egraph.find(cid)
        if cid in path:
            return []
        on_path = path | {cid}
        out: List[RExpr] = []
        for node in egraph.nodes(cid):
            if len(out) >= total:
                break
            if node.op == OP_VAR:
                name, attrs = node.payload
                out.append(RVar(name, tuple(attrs)))
            elif node.op == OP_LIT:
                out.append(RLit(node.payload))
            else:
                child_terms: List[List[RExpr]] = []
                for child in node.children:
                    terms = terms_of(child, on_path)
                    if not terms:
                        child_terms = []
                        break
                    child_terms.append(terms[:per_class])
                if not child_terms:
                    continue
                for combo in itertools.product(*child_terms):
                    if node.op == OP_SUM:
                        out.append(RSum(node.payload, combo[0]))
                    elif node.op == OP_JOIN:
                        out.append(RJoin(tuple(combo)))
                    else:
                        out.append(RAdd(tuple(combo)))
                    if len(out) >= total:
                        break
        return out

    return terms_of(class_id, frozenset())


def apply_rule_once(rule: Rule, candidate: RExpr, max_matches: int = 12):
    """Seed an e-graph with ``candidate`` and apply only ``rule``.

    Returns ``(egraph, root_class, applied)`` — ``applied`` counts matches
    whose application changed the graph.
    """
    egraph = EGraph()
    root = egraph.add_term(candidate)
    egraph.rebuild()
    matches = rule.search(egraph, None)
    applied = 0
    for match in matches[:max_matches]:
        if match.apply(egraph):
            applied += 1
    if applied:
        egraph.rebuild()
    return egraph, egraph.find(root), applied


def audit_relational_rule(
    rule: Rule,
    candidates: Optional[Sequence[Tuple[str, RExpr]]] = None,
    semirings: Sequence[Semiring] = AUDIT_SEMIRINGS,
    trials: int = 2,
    seed: int = 0,
) -> RuleVerdict:
    """Differential verdict for one relational rule over every semiring."""
    verdict = RuleVerdict(kind="relational", name=rule.name)
    pool = list(candidates if candidates is not None else candidate_pool())
    status = {ring.name: "sound" for ring in semirings}
    evaluated = {ring.name: 0 for ring in semirings}
    for cand_name, candidate in pool:
        egraph, root, applied = apply_rule_once(rule, candidate)
        if not applied:
            continue
        verdict.candidates_matched += 1
        terms = enumerate_terms(egraph, root)
        for ring in semirings:
            if status[ring.name] == "unsound":
                continue
            for trial in range(trials):
                rng = np.random.default_rng(seed * 7919 + trial)
                inputs = sample_rexpr_inputs(candidate, ring, rng, ATTR_SIZES)
                try:
                    expected, _ = evaluate_rexpr(candidate, ring, inputs, ATTR_SIZES)
                except RingUnsupported:
                    status[ring.name] = "unsupported"
                    break
                for term in terms:
                    try:
                        actual, _ = evaluate_rexpr(term, ring, inputs, ATTR_SIZES)
                    except RingUnsupported:
                        status[ring.name] = "unsupported"
                        break
                    evaluated[ring.name] += 1
                    if not ring.allclose(expected, actual):
                        status[ring.name] = "unsound"
                        verdict.detail = (
                            f"candidate {cand_name!r}: a term equated by "
                            f"{rule.name!r} disagrees in {ring.name}"
                        )
                        break
                if status[ring.name] != "sound":
                    break
    verdict.status = status
    verdict.terms_checked = sum(evaluated.values())
    return verdict


# ---------------------------------------------------------------------------
# Catalog harness: direct two-sided evaluation
# ---------------------------------------------------------------------------


def audit_catalog_pattern(
    pattern: CatalogPattern,
    index: int,
    semirings: Sequence[Semiring] = AUDIT_SEMIRINGS,
    trials: int = 2,
    seed: int = 0,
) -> RuleVerdict:
    """Evaluate both sides of one catalog pattern over every semiring."""
    name = f"{pattern.method}[{index}]"
    verdict = RuleVerdict(kind="catalog", name=name)
    try:
        lhs, rhs = pattern.parse(make_env())
    except Exception as error:  # noqa: BLE001 - reported, not raised
        verdict.status = {ring.name: "unsupported" for ring in semirings}
        verdict.detail = f"parse failure: {error}"
        return verdict
    status: Dict[str, str] = {}
    checked = 0
    for ring in semirings:
        ring_status = "sound"
        for trial in range(trials):
            rng = np.random.default_rng(seed * 104729 + trial)
            inputs = sample_la_inputs([lhs, rhs], ring, rng)
            try:
                left = evaluate_laexpr(lhs, ring, inputs)
                right = evaluate_laexpr(rhs, ring, inputs)
            except RingUnsupported:
                ring_status = "unsupported"
                break
            checked += 1
            if not ring.allclose(left, right):
                ring_status = "unsound"
                verdict.detail = f"{pattern.lhs} != {pattern.rhs} in {ring.name}"
                break
        status[ring.name] = ring_status
    verdict.status = status
    verdict.terms_checked = checked
    verdict.candidates_matched = 1
    return verdict


# ---------------------------------------------------------------------------
# The pass: audit both catalogs, cross-check declarations, build the matrix
# ---------------------------------------------------------------------------


def run_rules_audit(
    semirings: Sequence[Semiring] = AUDIT_SEMIRINGS,
    trials: int = 2,
    seed: int = 0,
    rules: Optional[Sequence[Rule]] = None,
    patterns: Optional[Sequence[CatalogPattern]] = None,
) -> Tuple[List[Finding], Dict[str, object]]:
    """Run the full audit; returns (findings, ring-dependence matrix)."""
    findings: List[Finding] = []
    verdicts: List[RuleVerdict] = []

    audited_rules = list(rules if rules is not None else relational_rules())
    for rule in audited_rules:
        verdict = audit_relational_rule(rule, semirings=semirings, trials=trials, seed=seed)
        verdict.declared = parse_soundness(type(rule).__doc__)
        verdicts.append(verdict)
        where = f"rules/relational.py::{rule.name}"
        if verdict.candidates_matched == 0:
            findings.append(
                Finding(
                    PASS_NAME,
                    "unexercised-rule",
                    where,
                    "no audit candidate matched this rule — classification is vacuous",
                )
            )
        findings.extend(_declaration_findings(verdict, where, semirings))

    audited_patterns = list(patterns if patterns is not None else all_patterns())
    for index_in_method, pattern in _indexed(audited_patterns):
        verdict = audit_catalog_pattern(
            pattern, index_in_method, semirings=semirings, trials=trials, seed=seed
        )
        verdict.declared = parse_soundness(getattr(pattern, "soundness", ""))
        verdicts.append(verdict)
        where = f"rules/systemml_catalog.py::{verdict.name}"
        if verdict.detail.startswith("parse failure"):
            findings.append(
                Finding(PASS_NAME, "pattern-parse-failure", where, verdict.detail)
            )
        findings.extend(_declaration_findings(verdict, where, semirings))

    classified = sum(1 for verdict in verdicts if verdict.classified())
    matrix = {
        "semirings": capability_table(),
        "literal_interpretation": (
            "integer n >= 0 denotes the n-fold ⊕ of the multiplicative one "
            "(collapses to one in idempotent rings); other literals are real-only"
        ),
        "note": (
            "commutativity/associativity/distributivity requirements are declared, "
            "not measured: every audited semiring satisfies them"
        ),
        "rules": {
            f"{verdict.kind}:{verdict.name}": verdict.to_dict() for verdict in verdicts
        },
        "classified": classified,
        "total": len(verdicts),
    }
    if rules is None and patterns is None:
        # The gating table derives from the *complete* matrix; comparing it
        # against a caller-restricted subset would flag every absent rule.
        findings.extend(_gating_findings(matrix))
    return findings, matrix


def _gating_findings(matrix: Dict[str, object]) -> List[Finding]:
    """Check the optimizer's committed ring-gating table against the matrix.

    The optimizer consumes the audit through
    :data:`repro.optimizer.ring_gate.GATING_TABLE`, a committed derivation
    of the rule matrix.  This pass re-derives the table from the freshly
    measured matrix and reports one finding per drifted entry, so the gate
    cannot silently diverge from the audit that justifies it.
    """
    from repro.optimizer.ring_gate import check_gating_derivation

    return [
        Finding(
            PASS_NAME,
            "ring-gate-drift",
            "optimizer/ring_gate.py::GATING_TABLE",
            drift,
        )
        for drift in check_gating_derivation(matrix)
    ]


def _indexed(patterns: Sequence[CatalogPattern]) -> List[Tuple[int, CatalogPattern]]:
    """Per-method position of each pattern (stable audit names)."""
    counters: Dict[str, int] = {}
    out: List[Tuple[int, CatalogPattern]] = []
    for pattern in patterns:
        position = counters.get(pattern.method, 0)
        counters[pattern.method] = position + 1
        out.append((position, pattern))
    return out


def _declaration_findings(
    verdict: RuleVerdict, where: str, semirings: Sequence[Semiring]
) -> List[Finding]:
    findings: List[Finding] = []
    if verdict.declared is None:
        findings.append(
            Finding(
                PASS_NAME,
                "missing-soundness-declaration",
                where,
                "rule has no Soundness stanza / soundness field",
            )
        )
        return findings
    unknown = [need for need in verdict.declared.needs if need not in KNOWN_NEEDS]
    if unknown:
        findings.append(
            Finding(
                PASS_NAME,
                "unknown-soundness-token",
                where,
                f"unknown needs tokens {unknown!r} (allowed: {sorted(KNOWN_NEEDS)})",
            )
        )
    if verdict.candidates_matched == 0:
        return findings
    predicted = verdict.declared.predicted(semirings)
    measured = frozenset(verdict.sound_over)
    if predicted != measured:
        findings.append(
            Finding(
                PASS_NAME,
                "declaration-mismatch",
                where,
                f"declared sound over {sorted(predicted)} but measured "
                f"{sorted(measured)}"
                + (f" ({verdict.detail})" if verdict.detail else ""),
            )
        )
    return findings
