"""Command-line driver: ``python -m repro.analysis``.

Runs the three static-analysis passes — the differential rule-soundness
audit, the plan/tape linter, the concurrency/nondeterminism linter — merges
their findings into one report, subtracts the baseline, and (under
``--check``) exits non-zero when anything new survives.  This is the CI
gate; the same command runs locally.

Common invocations::

    python -m repro.analysis --check            # the CI gate
    python -m repro.analysis --json             # machine-readable report
    python -m repro.analysis --selftest         # prove the passes can fail
    python -m repro.analysis --write-matrix analysis/rule_matrix.json
    python -m repro.analysis --passes plans --store path/to/plan_store

Without ``--store``, the plan pass compiles the five paper workloads at
``--size`` into a throwaway session store and lints what came out — entries,
templates, tapes *and* the lowered RA bodies — so the gate always exercises
real optimizer output, not just whatever happens to be on disk.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import concurrency_lint, plan_lint, rules_audit
from repro.analysis.report import AnalysisReport, Baseline, BaselineError

PASS_CHOICES = ("rules", "plans", "concurrency")

#: the paper's five workload families, audited at one ladder point
WORKLOAD_NAMES = ("ALS", "GLM", "SVM", "MLR", "PNMF")


def _compile_workload_store(size: str) -> Tuple[List[Any], Dict[str, int]]:
    """Compile the five workloads into a temp store and lint the output."""
    from repro.api.session import Session
    from repro.translate.lower import LoweringError, lower
    from repro.workloads import get_workload

    with tempfile.TemporaryDirectory(prefix="repro-analysis-") as tmp:
        store_dir = os.path.join(tmp, "plan_store")
        session = Session(store_path=store_dir)
        rexprs = []
        skipped = 0
        for workload_name in WORKLOAD_NAMES:
            workload = get_workload(workload_name, size)
            workload.session_plans(session)
            for root_name, root in workload.roots.items():
                try:
                    lowered = lower(root)
                except LoweringError:
                    # Roots with transcendental barriers are region-split by
                    # the optimizer; the whole-root RA view does not exist.
                    skipped += 1
                    continue
                rexprs.append((f"{workload_name}/{root_name}", lowered.plan.body))
        findings, counts = plan_lint.run_plan_lint(
            stores=[("store/", store_dir)], rexprs=rexprs
        )
    counts["lowering_skipped"] = skipped
    counts["workloads"] = len(WORKLOAD_NAMES)
    return findings, counts


def run_passes(
    passes: Tuple[str, ...],
    size: str,
    trials: int,
    seed: int,
    store_paths: Tuple[str, ...],
) -> AnalysisReport:
    report = AnalysisReport()
    started = time.perf_counter()
    if "rules" in passes:
        findings, matrix = rules_audit.run_rules_audit(trials=trials, seed=seed)
        report.extend(findings)
        report.matrix = matrix
        report.summary["rules_classified"] = matrix["classified"]
        report.summary["rules_total"] = matrix["total"]
    if "plans" in passes:
        if store_paths:
            findings, counts = plan_lint.run_plan_lint(
                stores=[(f"{path.rstrip(os.sep)}/", path) for path in store_paths]
            )
        else:
            findings, counts = _compile_workload_store(size)
        report.extend(findings)
        for key, value in counts.items():
            report.summary[f"plans_{key}"] = value
    if "concurrency" in passes:
        findings, counts = concurrency_lint.run_concurrency_lint()
        report.extend(findings)
        report.summary["concurrency_modules"] = counts["modules"]
    report.summary["passes"] = ",".join(passes)
    report.summary["elapsed_s"] = round(time.perf_counter() - started, 3)
    return report


def _write_bench(path: str, report: AnalysisReport, baseline: Baseline) -> None:
    """Emit a BENCH record so the bench gate tracks analysis coverage."""
    classified = report.summary.get("rules_classified", 0)
    total = report.summary.get("rules_total", 0)
    payload = {
        "headline": {
            "name": "rules_classified_fraction",
            "value": (classified / total) if total else 0.0,
        },
        "summary": dict(report.summary),
        "new_findings": len(report.partition(baseline)["new"]),
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Rule-soundness audit, plan/tape lint and concurrency lint.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any non-baselined finding exists (the CI gate)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    parser.add_argument(
        "--baseline",
        default="analysis/baseline.json",
        help="accepted-findings file (default: analysis/baseline.json)",
    )
    parser.add_argument(
        "--write-matrix",
        metavar="PATH",
        help="persist the per-rule ring-dependence matrix as JSON",
    )
    parser.add_argument(
        "--passes",
        default=",".join(PASS_CHOICES),
        help=f"comma-separated subset of {PASS_CHOICES} (default: all)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the known-bad fixtures; exit 0 iff every pass flags its defect",
    )
    parser.add_argument(
        "--store",
        action="append",
        default=[],
        metavar="DIR",
        help="lint an existing plan-store directory instead of compiling "
        "the workloads (repeatable)",
    )
    parser.add_argument(
        "--size", default="S", help="workload ladder point to compile (default: S)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=2,
        help="randomized evaluation trials per rule per ring (default: 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="audit RNG seed")
    parser.add_argument(
        "--bench-out",
        metavar="PATH",
        help="also write a BENCH_analysis.json record with the coverage headline",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        from repro.analysis.selftest import format_results, run_selftest

        results = run_selftest()
        print(format_results(results))
        return 0 if all(result.fired for result in results) else 1

    passes = tuple(name.strip() for name in args.passes.split(",") if name.strip())
    unknown = [name for name in passes if name not in PASS_CHOICES]
    if unknown:
        parser.error(f"unknown pass(es) {unknown}; choose from {PASS_CHOICES}")

    try:
        baseline = Baseline.load(args.baseline)
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    report = run_passes(passes, args.size, args.trials, args.seed, tuple(args.store))

    if args.write_matrix:
        if report.matrix is None:
            print("error: --write-matrix needs the 'rules' pass", file=sys.stderr)
            return 2
        directory = os.path.dirname(os.path.abspath(args.write_matrix))
        os.makedirs(directory, exist_ok=True)
        with open(args.write_matrix, "w", encoding="utf-8") as handle:
            json.dump(report.matrix, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.bench_out:
        _write_bench(args.bench_out, report, baseline)

    if args.json:
        print(json.dumps(report.to_dict(baseline), indent=2, sort_keys=True))
    else:
        print(report.to_text(baseline))

    if args.check and report.failed(baseline):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
