"""Findings, baselines and the combined analysis report.

Every pass emits :class:`Finding`\\ s with a *stable key* (pass, code,
location — no line numbers, so unrelated edits don't churn it).  A baseline
file (``analysis/baseline.json``) suppresses accepted findings; each entry
must carry a one-line justification, and stale entries (keys no pass emits
any more) are reported so the baseline cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Finding:
    """One defect or suspicious construct surfaced by a pass."""

    pass_name: str
    code: str
    where: str
    message: str

    @property
    def key(self) -> str:
        return f"{self.pass_name}:{self.code}:{self.where}"

    def to_dict(self) -> Dict[str, str]:
        return {
            "pass": self.pass_name,
            "code": self.code,
            "where": self.where,
            "message": self.message,
            "key": self.key,
        }


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing justification)."""


@dataclass
class Baseline:
    """Accepted findings: key → one-line justification."""

    entries: Dict[str, str] = field(default_factory=dict)
    path: Optional[str] = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls(path=path)
        except (OSError, json.JSONDecodeError) as error:
            raise BaselineError(f"cannot read baseline {path!r}: {error}") from error
        entries = payload.get("entries") if isinstance(payload, dict) else None
        if not isinstance(entries, list):
            raise BaselineError(f"baseline {path!r} must contain an 'entries' list")
        table: Dict[str, str] = {}
        for entry in entries:
            if not isinstance(entry, dict):
                raise BaselineError(f"baseline entry {entry!r} is not an object")
            key = entry.get("key")
            justification = entry.get("justification")
            if not isinstance(key, str) or not key:
                raise BaselineError(f"baseline entry {entry!r} lacks a key")
            if not isinstance(justification, str) or not justification.strip():
                raise BaselineError(
                    f"baseline entry {key!r} lacks a justification — every "
                    "accepted finding must say why it is benign"
                )
            table[key] = justification
        return cls(entries=table, path=path)

    def covers(self, finding: Finding) -> bool:
        return finding.key in self.entries

    def stale_keys(self, findings: Sequence[Finding]) -> List[str]:
        live = {finding.key for finding in findings}
        return sorted(key for key in self.entries if key not in live)


@dataclass
class AnalysisReport:
    """The merged output of every pass plus the ring-dependence matrix."""

    findings: List[Finding] = field(default_factory=list)
    matrix: Optional[Dict[str, Any]] = None
    summary: Dict[str, Any] = field(default_factory=dict)

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def partition(self, baseline: Baseline) -> Dict[str, List[Finding]]:
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in self.findings:
            (accepted if baseline.covers(finding) else new).append(finding)
        return {"new": new, "accepted": accepted}

    def to_dict(self, baseline: Baseline) -> Dict[str, Any]:
        parts = self.partition(baseline)
        return {
            "summary": dict(self.summary),
            "findings": [finding.to_dict() for finding in parts["new"]],
            "accepted": [
                {**finding.to_dict(), "justification": baseline.entries[finding.key]}
                for finding in parts["accepted"]
            ],
            "stale_baseline_keys": baseline.stale_keys(self.findings),
            "matrix": self.matrix,
        }

    def to_text(self, baseline: Baseline) -> str:
        parts = self.partition(baseline)
        lines: List[str] = []
        for key, value in sorted(self.summary.items()):
            lines.append(f"{key}: {value}")
        if parts["accepted"]:
            lines.append(f"baselined findings: {len(parts['accepted'])}")
        stale = baseline.stale_keys(self.findings)
        for key in stale:
            lines.append(f"STALE BASELINE (no longer emitted): {key}")
        if not parts["new"]:
            lines.append("no new findings")
        for finding in parts["new"]:
            lines.append(
                f"[{finding.pass_name}] {finding.code} at {finding.where}: {finding.message}"
            )
        return "\n".join(lines)

    def failed(self, baseline: Baseline) -> bool:
        """True when non-baselined findings exist (the ``--check`` gate)."""
        return bool(self.partition(baseline)["new"])
