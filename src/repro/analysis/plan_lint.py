"""Structural linter for LA plans, RA plans, tapes and plan stores.

Five checks, all on artifacts the optimizer has already committed to:

* **shape consistency** — every node of an LA expression must have a
  computable shape; a dimension clash anywhere (a doctored entry, a codec
  bug) is reported at the deepest failing node, not as a stack trace at
  execution time;
* **sparsity hygiene** — sparsity hints must lie in ``[0, 1]``, and the
  hints on a stored entry's slot variables must agree with the signature's
  :class:`~repro.canonical.fingerprint.SlotSpec` values the plan was costed
  under (a disagreement means the cost model and the runtime are looking at
  different matrices);
* **sum-index hygiene** (RA) — an aggregation index bound twice on one
  path is shadowing (almost certainly a lowering bug); an index absent from
  the child's schema aggregates nothing and should have been folded into a
  counting literal by ``eliminate-unused-index``;
* **tape hygiene** — steps after the root are dead weight, and two steps
  materializing structurally equal non-leaf nodes mean compile-time CSE
  failed (the tape shares by object identity only);
* **cost monotonicity** — ``keep_only_improvements`` promises
  ``optimized_cost <= original_cost`` for every committed artifact; a
  violation means a plan regression was cached and will be served.
* **generated-source hygiene** — the fused modules
  :mod:`repro.runtime.codegen` emits for an entry are re-linted like any
  hot-path source (the concurrency linter's wall-clock and unseeded-RNG
  bans apply to emitted code too), and the module's ``META`` region
  counts must agree with the region plan it claims to implement.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.report import Finding
from repro.lang import expr as la
from repro.lang.dims import DimensionError
from repro.ra.rexpr import RAdd, RExpr, RJoin, RSum, RVar, free_attrs
from repro.runtime.engine import slot_name
from repro.runtime.tape import TapePlan

PASS_NAME = "plan-lint"

#: relative slack on the cost-monotonicity comparison (float noise only —
#: the invariant itself is exact)
COST_RTOL = 1e-9


def _finding(code: str, where: str, message: str) -> Finding:
    return Finding(pass_name=PASS_NAME, code=code, where=where, message=message)


def _sparsity_mismatch(expected: Optional[float], actual: Optional[float]) -> bool:
    """Whether a slot's hint contradicts the signature's costed sparsity.

    ``None`` means "assumed dense" and is compatible with anything — only
    two *present* hints that disagree indicate the cost model and the
    runtime saw different matrices.
    """
    if expected is None or actual is None:
        return False
    return abs(expected - actual) > 1e-9


# ---------------------------------------------------------------------------
# LA expressions
# ---------------------------------------------------------------------------


def lint_expr(expr: la.LAExpr, where: str) -> List[Finding]:
    """Shape and sparsity checks over one LA expression."""
    findings: List[Finding] = []
    seen: Set[int] = set()
    bad_vars: Set[str] = set()
    for node in expr.walk():
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, la.Var):
            sparsity = node.sparsity
            if sparsity is not None and not 0.0 <= sparsity <= 1.0:
                if node.name not in bad_vars:
                    bad_vars.add(node.name)
                    findings.append(
                        _finding(
                            "sparsity-out-of-range",
                            f"{where}::{node.name}",
                            f"sparsity hint {sparsity!r} outside [0, 1]",
                        )
                    )
    root_cause = _deepest_shape_failure(expr)
    if root_cause is not None:
        node, error = root_cause
        findings.append(
            _finding(
                "shape-mismatch",
                f"{where}::{type(node).__name__}",
                f"no consistent shape: {error}",
            )
        )
    return findings


def _deepest_shape_failure(
    expr: la.LAExpr,
) -> Optional[Tuple[la.LAExpr, Exception]]:
    """The deepest node whose shape fails while all its children's succeed."""
    for node in expr.walk():
        try:
            node.shape
        except (DimensionError, ValueError) as error:
            children_ok = True
            for child in node.children:
                try:
                    child.shape
                except (DimensionError, ValueError):
                    children_ok = False
                    break
            if children_ok:
                return node, error
    return None


# ---------------------------------------------------------------------------
# RA expressions
# ---------------------------------------------------------------------------


def lint_rexpr(node: RExpr, where: str) -> List[Finding]:
    """Sum-index and sparsity-hint checks over one RA expression."""
    findings: List[Finding] = []
    reported: Set[str] = set()

    def report(code: str, suffix: str, message: str) -> None:
        key = f"{code}:{suffix}"
        if key not in reported:
            reported.add(key)
            findings.append(_finding(code, f"{where}::{suffix}", message))

    def visit(expr: RExpr, bound: frozenset) -> None:
        if isinstance(expr, RVar):
            if expr.sparsity is not None and not 0.0 <= expr.sparsity <= 1.0:
                report(
                    "sparsity-out-of-range",
                    expr.name,
                    f"sparsity hint {expr.sparsity!r} outside [0, 1]",
                )
            return
        if isinstance(expr, RSum):
            names = {attr.name for attr in expr.indices}
            child_schema = {attr.name for attr in free_attrs(expr.child)}
            for name in sorted(names & bound):
                report(
                    "shadowed-sum-index",
                    name,
                    f"index {name!r} is already bound by an enclosing Σ",
                )
            for name in sorted(names - child_schema):
                report(
                    "unbound-sum-index",
                    name,
                    f"Σ_{name} aggregates nothing — the child never mentions "
                    f"{name!r}; fold it into a counting literal",
                )
            visit(expr.child, bound | frozenset(names))
            return
        if isinstance(expr, (RJoin, RAdd)):
            for arg in expr.args:
                visit(arg, bound)

    visit(node, frozenset())
    return findings


# ---------------------------------------------------------------------------
# Tapes
# ---------------------------------------------------------------------------


def lint_tape(
    tape: TapePlan, where: str, expr: Optional[la.LAExpr] = None
) -> List[Finding]:
    """Dead-step and duplicate-subcomputation checks over a compiled tape.

    With ``expr`` (the plan the tape claims to compile), the step count is
    also compared against a fresh mirror compile, which catches injected
    steps that the root-position check alone would miss.
    """
    findings: List[Finding] = []
    n_steps = len(tape)
    if n_steps:
        last_position = tape.n_slots + n_steps - 1
        if tape._root != last_position:
            dead = last_position - max(tape._root, tape.n_slots - 1)
            findings.append(
                _finding(
                    "dead-tape-step",
                    where,
                    f"{dead} step(s) after the root at position {tape._root} "
                    "are never read",
                )
            )
    if expr is not None:
        mirror = TapePlan(expr, tape.n_slots)
        if n_steps > len(mirror):
            findings.append(
                _finding(
                    "dead-tape-step",
                    f"{where}::extra",
                    f"tape has {n_steps} steps, a fresh compile of its plan "
                    f"needs only {len(mirror)}",
                )
            )
    # Duplicate subcomputations: LA nodes are frozen dataclasses, so ==
    # is structural; two steps materializing equal non-leaf nodes mean the
    # plan lost sharing (the tape memoizes by object identity only).
    materialized: List[la.LAExpr] = []
    duplicates = 0
    for index in range(n_steps):
        node = tape.step_node(index)
        if node is None or not node.children:
            continue
        if any(node == other for other in materialized):
            duplicates += 1
        else:
            materialized.append(node)
    if duplicates:
        findings.append(
            _finding(
                "duplicate-tape-step",
                where,
                f"{duplicates} step(s) recompute a structurally identical "
                "non-leaf subexpression — compile-time CSE lost sharing",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Generated fused sources
# ---------------------------------------------------------------------------


def lint_generated_source(
    source: str,
    meta: Mapping[str, object],
    n_regions: int,
    fused_regions: int,
    where: str,
) -> List[Finding]:
    """Hygiene checks over one emitted fused-kernel module.

    The emitted text is *code on the serving hot path*, so the
    concurrency linter's nondeterminism bans (``time.time``, unseeded
    RNG) apply to it exactly as to hand-written runtime modules; on top
    of that, the module's ``META`` record must agree with the region
    plan it was compiled from — drift means the cached source implements
    a different fusion than the plan (and the profiler) believe it does.
    """
    from repro.analysis.concurrency_lint import lint_source

    findings = lint_source(source, where, hot_path=True)
    if meta.get("regions") != n_regions or meta.get("fused_regions") != fused_regions:
        findings.append(
            _finding(
                "codegen-region-drift",
                where,
                f"module META claims {meta.get('regions')} regions "
                f"({meta.get('fused_regions')} fused) but the region plan "
                f"has {n_regions} ({fused_regions} fused)",
            )
        )
    return findings


def lint_codegen(entry, where: str) -> List[Finding]:
    """Emit and lint the fused source an entry's plan would execute behind.

    A plan codegen cannot serve (non-real ring, unsupported construct)
    yields no findings — the interpreter path carries it.  Compile
    failures are themselves findings: the serving tier would silently
    fall back, but an entry whose source *cannot* be generated while its
    plan claims to support fusion deserves a report, not a shrug.
    """
    from repro.runtime.codegen import CodegenUnsupported, emit_source, plan_regions

    n_slots = len(entry.signature.slots)
    slot_sparsity = {spec.index: spec.sparsity for spec in entry.signature.slots}
    try:
        region_plan = plan_regions(entry.slot_plan, n_slots, slot_sparsity)
    except CodegenUnsupported:
        return []
    except Exception as error:  # noqa: BLE001 - any planner crash is the finding
        return [
            _finding(
                "codegen-failure",
                where,
                f"fusion planner failed on the slot plan: {error}",
            )
        ]
    try:
        source = emit_source(region_plan, "real")
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<lint:{where}>", "exec"), namespace)  # noqa: S102
    except Exception as error:  # noqa: BLE001 - any emit/compile crash is the finding
        return [
            _finding(
                "codegen-failure",
                where,
                f"emitted source does not compile: {error}",
            )
        ]
    meta = namespace.get("META")
    if not isinstance(meta, dict):
        return [
            _finding(
                "codegen-failure", where, "emitted module carries no META record"
            )
        ]
    return lint_generated_source(
        source,
        meta,
        len(region_plan.regions),
        region_plan.fused_regions,
        f"{where}::codegen",
    )


# ---------------------------------------------------------------------------
# Plan entries and stores
# ---------------------------------------------------------------------------


def lint_entry(entry, where: str) -> List[Finding]:
    """All plan-level checks over one :class:`~repro.api.plan.PlanEntry`."""
    findings = lint_expr(entry.slot_plan, where)
    n_slots = len(entry.signature.slots)

    # Slot variables must be in range and carry the sparsity the signature
    # costed them under.
    spec_sparsity = {
        slot_name(spec.index): spec.sparsity for spec in entry.signature.slots
    }
    seen_vars: Set[str] = set()
    for node in entry.slot_plan.walk():
        if not isinstance(node, la.Var) or node.name in seen_vars:
            continue
        seen_vars.add(node.name)
        if node.name not in spec_sparsity:
            findings.append(
                _finding(
                    "bad-slot-var",
                    f"{where}::{node.name}",
                    f"variable {node.name!r} is not one of the signature's "
                    f"{n_slots} slots",
                )
            )
            continue
        expected = spec_sparsity[node.name]
        actual = node.sparsity
        if _sparsity_mismatch(expected, actual):
            findings.append(
                _finding(
                    "sparsity-mismatch",
                    f"{where}::{node.name}",
                    f"slot hint {actual!r} disagrees with the signature's "
                    f"costed sparsity {expected!r}",
                )
            )

    # Guard geometry: a non-exact template guard must describe the same
    # slots/dims the signature has, with non-empty ranges.
    guard = entry.guard
    if guard is not None and not guard.exact:
        if len(guard.bands) != n_slots:
            findings.append(
                _finding(
                    "guard-arity",
                    where,
                    f"guard has {len(guard.bands)} sparsity bands for "
                    f"{n_slots} slots",
                )
            )
        for dim in guard.dims:
            if dim.lo > dim.hi or not dim.lo <= dim.pivot <= dim.hi:
                findings.append(
                    _finding(
                        "guard-empty-range",
                        f"{where}::{dim.name}",
                        f"dim guard [{dim.lo}, {dim.hi}] (pivot {dim.pivot}) "
                        "admits no sizes or excludes its own pivot",
                    )
                )

    # The keep_only_improvements bar: a committed artifact must never cost
    # more than the expression it replaced.
    report = entry.artifact.report
    if report.optimized_cost > report.original_cost * (1.0 + COST_RTOL):
        findings.append(
            _finding(
                "cost-regression",
                where,
                f"optimized_cost {report.optimized_cost:.6g} exceeds "
                f"original_cost {report.original_cost:.6g} — "
                "keep_only_improvements was bypassed",
            )
        )

    # The slot plan must actually compile to a tape (the serving path will
    # try); a failure here is a corrupt entry, and the tape checks ride on
    # the successful compile.
    try:
        tape = TapePlan(entry.slot_plan, n_slots)
    except Exception as error:  # noqa: BLE001 - any compile failure is the finding
        findings.append(
            _finding(
                "tape-compile-failure",
                where,
                f"slot plan does not compile to a tape: {error}",
            )
        )
    else:
        findings.extend(lint_tape(tape, where))
    findings.extend(lint_codegen(entry, where))
    return findings


def store_entry_files(path: str) -> List[str]:
    """Entry/template file names of a plan-store directory (no manifest)."""
    try:
        names = os.listdir(path)
    except OSError:
        return []
    return sorted(
        name
        for name in names
        if (name.endswith(".json") and name != "manifest.json")
        or name.endswith(".tpl")
    )


def lint_store_dir(path: str, where_prefix: str = "") -> List[Finding]:
    """Lint every entry and template file of a plan-store directory.

    The store's own loaders demote decode failures to cache misses; the
    linter surfaces them instead — a store full of unreadable entries
    *works* but silently recompiles everything.
    """
    from repro.serialize.codec import DeserializationError, loads_entry

    findings: List[Finding] = []
    for name in store_entry_files(path):
        where = f"{where_prefix}{name}"
        try:
            with open(os.path.join(path, name), "rb") as handle:
                entry = loads_entry(handle.read())
        except (OSError, DeserializationError) as error:
            findings.append(
                _finding("unreadable-entry", where, f"cannot decode: {error}")
            )
            continue
        findings.extend(lint_entry(entry, where))
    return findings


def lint_store(store, where_prefix: str = "") -> List[Finding]:
    """Lint a live :class:`~repro.serialize.store.PlanStore` (by directory)."""
    return lint_store_dir(store.path, where_prefix=where_prefix)


def run_plan_lint(
    stores: Sequence[Tuple[str, str]] = (),
    exprs: Iterable[Tuple[str, la.LAExpr]] = (),
    rexprs: Iterable[Tuple[str, RExpr]] = (),
) -> Tuple[List[Finding], Dict[str, int]]:
    """Run every plan check over ``(prefix, store_dir)`` pairs plus loose
    expressions; returns findings and a coverage summary."""
    findings: List[Finding] = []
    counts = {"stores": 0, "entries": 0, "exprs": 0, "rexprs": 0}
    for prefix, path in stores:
        counts["stores"] += 1
        counts["entries"] += len(store_entry_files(path))
        findings.extend(lint_store_dir(path, where_prefix=prefix))
    for where, expr in exprs:
        counts["exprs"] += 1
        findings.extend(lint_expr(expr, where))
    for where, rexpr in rexprs:
        counts["rexprs"] += 1
        findings.extend(lint_rexpr(rexpr, where))
    return findings, counts
