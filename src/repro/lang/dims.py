"""Symbolic dimensions and shapes for the LA language.

A :class:`Dim` is a named symbolic dimension with an optional concrete size
and an optional sparsity hint.  Two dims compare equal only if they are the
same identity (same name); this identity is what the LA-to-RA lowering uses
to assign relational index names, so a workload should create one ``Dim``
per logical axis (rows of X, the latent rank, the label count, ...).

A :class:`Shape` is a pair of dims (rows, cols).  Scalars are represented by
the 1x1 shape :data:`SCALAR_SHAPE` whose dims are the shared unit dimension
:data:`UNIT`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class DimensionError(ValueError):
    """Raised when an LA expression is built with incompatible shapes."""


_auto_counter = 0


def _next_auto_name(prefix: str) -> str:
    global _auto_counter
    _auto_counter += 1
    return f"{prefix}{_auto_counter}"


@dataclass(frozen=True)
class Dim:
    """A symbolic dimension.

    Parameters
    ----------
    name:
        Unique symbolic name (e.g. ``"m"``, ``"rank"``).  Dims are compared
        by name, so reuse the same name only for axes that are genuinely the
        same logical axis.
    size:
        Optional concrete size.  Cost models and the runtime need concrete
        sizes; purely symbolic reasoning (rule derivation, canonical forms)
        does not.
    """

    name: str
    size: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.size is not None and self.size < 0:
            raise DimensionError(f"dimension {self.name!r} has negative size {self.size}")

    @staticmethod
    def fresh(prefix: str = "d", size: Optional[int] = None) -> "Dim":
        """Create a dimension with a globally unique auto-generated name."""
        return Dim(_next_auto_name(prefix + "_"), size)

    def with_size(self, size: int) -> "Dim":
        """Return a copy of this dim carrying a concrete size."""
        return Dim(self.name, size)

    @property
    def is_unit(self) -> bool:
        return self.name == UNIT_NAME

    # -- codec hooks (repro.serialize) -----------------------------------------
    def to_json(self) -> list:
        """Strict-JSON form of this dim: ``[name, size]``.

        Used by the plan codec's dim table; identity is carried by the name
        (dims compare by name), so round-tripping preserves which inputs
        share an axis even when the size is symbolic (``None``).
        """
        return [self.name, self.size]

    @staticmethod
    def from_json(payload: object) -> "Dim":
        """Rebuild a dim from :meth:`to_json` output (unit dim canonicalized)."""
        if not isinstance(payload, (list, tuple)) or len(payload) != 2:
            raise DimensionError(f"malformed dim payload: {payload!r}")
        name, size = payload
        if name == UNIT_NAME:
            return UNIT
        return Dim(str(name), None if size is None else int(size))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.size is None:
            return f"Dim({self.name})"
        return f"Dim({self.name}={self.size})"


UNIT_NAME = "__unit__"
#: The shared 1-sized dimension used for scalar shapes and for the collapsed
#: axis produced by aggregations.
UNIT = Dim(UNIT_NAME, 1)


@dataclass(frozen=True)
class Shape:
    """The shape of an LA expression: a (rows, cols) pair of :class:`Dim`."""

    rows: Dim
    cols: Dim

    @property
    def is_scalar(self) -> bool:
        return self.rows.is_unit and self.cols.is_unit

    @property
    def is_col_vector(self) -> bool:
        return self.cols.is_unit and not self.rows.is_unit

    @property
    def is_row_vector(self) -> bool:
        return self.rows.is_unit and not self.cols.is_unit

    @property
    def is_vector(self) -> bool:
        return self.is_col_vector or self.is_row_vector

    @property
    def is_matrix(self) -> bool:
        return not (self.rows.is_unit or self.cols.is_unit)

    def transposed(self) -> "Shape":
        return Shape(self.cols, self.rows)

    def nrows(self) -> Optional[int]:
        return self.rows.size

    def ncols(self) -> Optional[int]:
        return self.cols.size

    def ncells(self) -> Optional[int]:
        """Number of cells if both dims have concrete sizes, else ``None``."""
        if self.rows.size is None or self.cols.size is None:
            return None
        return self.rows.size * self.cols.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shape({self.rows.name} x {self.cols.name})"


#: Shape of scalar expressions.
SCALAR_SHAPE = Shape(UNIT, UNIT)


def same_dim(a: Dim, b: Dim) -> bool:
    """Whether two dims denote the same axis.

    The unit dim is compatible with itself only; other dims are compared by
    name.  Concrete sizes are ignored for compatibility (they are carried for
    costing, not for typing), but if both are present and differ the dims are
    incompatible.
    """
    if a.name != b.name:
        return False
    if a.size is not None and b.size is not None and a.size != b.size:
        return False
    return True


def broadcast_shapes(a: Shape, b: Shape, op: str) -> Shape:
    """Shape of an element-wise binary operation with SystemML broadcasting.

    Element-wise operators accept operands of identical shape, a scalar on
    either side, or a row/column vector that matches one axis of the matrix
    operand (SystemML-style vector broadcasting).
    """
    if a.is_scalar:
        return b
    if b.is_scalar:
        return a
    if same_dim(a.rows, b.rows) and same_dim(a.cols, b.cols):
        return Shape(_merge(a.rows, b.rows), _merge(a.cols, b.cols))
    # column-vector broadcast against matrix rows
    if b.is_col_vector and same_dim(a.rows, b.rows):
        return a
    if a.is_col_vector and same_dim(a.rows, b.rows):
        return b
    # row-vector broadcast against matrix columns
    if b.is_row_vector and same_dim(a.cols, b.cols):
        return a
    if a.is_row_vector and same_dim(a.cols, b.cols):
        return b
    # outer broadcast of a column vector against a row vector (NumPy-style)
    if a.is_col_vector and b.is_row_vector:
        return Shape(a.rows, b.cols)
    if a.is_row_vector and b.is_col_vector:
        return Shape(b.rows, a.cols)
    raise DimensionError(
        f"incompatible shapes for {op}: {a.rows.name}x{a.cols.name} vs {b.rows.name}x{b.cols.name}"
    )


def matmul_shape(a: Shape, b: Shape) -> Shape:
    """Shape of a matrix multiplication ``a @ b``."""
    if not same_dim(a.cols, b.rows):
        raise DimensionError(
            f"matmul inner dimensions differ: {a.cols.name} vs {b.rows.name}"
        )
    return Shape(a.rows, b.cols)


def _merge(a: Dim, b: Dim) -> Dim:
    """Merge two compatible dims, preferring the one with a concrete size."""
    if a.size is not None:
        return a
    return b
