"""Parser for a DML-like expression syntax.

The grammar covers the subset of SystemML's DML expression language that the
rewrite catalog (Fig. 14 of the paper) and the tests use::

    expr     := add
    add      := mul (("+" | "-") mul)*
    mul      := matmul (("*" | "/") matmul)*
    matmul   := unary ("%*%" unary)*
    unary    := "-" unary | power
    power    := atom ("^" atom)?
    atom     := NUMBER | NAME | NAME "(" args ")" | "(" expr ")"

Recognised functions: ``t``, ``sum``, ``rowSums``, ``colSums``, ``exp``,
``log``, ``sqrt``, ``abs``, ``sign``, ``sigmoid``, ``round``, ``as.scalar``,
``sprop``, ``wsloss``, ``mmchain``.

Free names are resolved against the ``env`` mapping provided by the caller
(name -> :class:`~repro.lang.expr.Var` or any other LA expression), so the
same pattern string can be instantiated with different shapes/sparsities.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.lang import expr as e


class ParseError(ValueError):
    """Raised when an expression string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<MATMUL>%\*%)
  | (?P<NUMBER>\d+\.\d*|\.\d+|\d+)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<OP>[()+\-*/^,])
  | (?P<WS>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos} in {text!r}")
        pos = match.end()
        if match.lastgroup == "WS":
            continue
        tokens.append(match.group())
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], env: Dict[str, e.LAExpr]):
        self.tokens = tokens
        self.pos = 0
        self.env = env

    def peek(self) -> Optional[str]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r} but found {got!r}")

    # grammar ----------------------------------------------------------------
    def parse(self) -> e.LAExpr:
        result = self.add()
        if self.peek() is not None:
            raise ParseError(f"trailing tokens starting at {self.peek()!r}")
        return result

    def add(self) -> e.LAExpr:
        node = self.mul()
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self.mul()
            node = e.ElemPlus(node, rhs) if op == "+" else e.ElemMinus(node, rhs)
        return node

    def mul(self) -> e.LAExpr:
        node = self.matmul()
        while self.peek() in ("*", "/"):
            op = self.next()
            rhs = self.matmul()
            node = e.ElemMul(node, rhs) if op == "*" else e.ElemDiv(node, rhs)
        return node

    def matmul(self) -> e.LAExpr:
        node = self.unary()
        while self.peek() == "%*%":
            self.next()
            rhs = self.unary()
            node = e.MatMul(node, rhs)
        return node

    def unary(self) -> e.LAExpr:
        if self.peek() == "-":
            self.next()
            return e.Neg(self.unary())
        return self.power()

    def power(self) -> e.LAExpr:
        base = self.atom()
        if self.peek() == "^":
            self.next()
            exponent = self.atom()
            if not isinstance(exponent, e.Literal):
                raise ParseError("exponent must be a numeric literal")
            return e.Power(base, exponent.value)
        return base

    def atom(self) -> e.LAExpr:
        token = self.next()
        if token == "(":
            node = self.add()
            self.expect(")")
            return node
        if re.fullmatch(r"\d+\.\d*|\.\d+|\d+", token):
            return e.Literal(float(token))
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)?", token):
            if self.peek() == "(":
                return self.call(token)
            return self.lookup(token)
        raise ParseError(f"unexpected token {token!r}")

    def call(self, name: str) -> e.LAExpr:
        self.expect("(")
        args: List[e.LAExpr] = []
        if self.peek() != ")":
            args.append(self.add())
            while self.peek() == ",":
                self.next()
                args.append(self.add())
        self.expect(")")
        return self.build_call(name, args)

    def build_call(self, name: str, args: List[e.LAExpr]) -> e.LAExpr:
        def one() -> e.LAExpr:
            if len(args) != 1:
                raise ParseError(f"{name}() expects 1 argument, got {len(args)}")
            return args[0]

        if name == "t":
            return e.Transpose(one())
        if name == "sum":
            return e.Sum(one())
        if name == "rowSums":
            return e.RowSums(one())
        if name == "colSums":
            return e.ColSums(one())
        if name == "as.scalar":
            return e.CastScalar(one())
        if name == "sprop":
            return e.SProp(one())
        if name in e.UNARY_FUNCS:
            return e.UnaryFunc(name, one())
        if name == "wsloss":
            if len(args) != 4:
                raise ParseError("wsloss() expects 4 arguments (X, U, V, W)")
            return e.WSLoss(*args)
        if name == "mmchain":
            if len(args) == 2:
                return e.MMChain(args[0], args[1], e.Literal(1.0))
            if len(args) == 3:
                return e.MMChain(*args)
            raise ParseError("mmchain() expects 2 or 3 arguments")
        raise ParseError(f"unknown function {name!r}")

    def lookup(self, name: str) -> e.LAExpr:
        if name not in self.env:
            raise ParseError(f"unbound name {name!r}; provide it in env")
        return self.env[name]


def parse_expr(text: str, env: Dict[str, e.LAExpr]) -> e.LAExpr:
    """Parse a DML-like expression string against an environment.

    Parameters
    ----------
    text:
        Expression in the grammar described in the module docstring.
    env:
        Mapping from free names to LA expressions (typically ``Var`` leaves).
    """
    return _Parser(_tokenize(text), env).parse()
