"""Ergonomic constructors for LA expressions.

These helpers let workloads and tests be written close to the DML scripts
they reproduce::

    m, n, r = Dim("m", 100_000), Dim("n", 1_000), Dim("r", 20)
    X = Matrix("X", m, n, sparsity=0.01)
    U = Matrix("U", m, r)
    V = Matrix("V", n, r)
    loss = Sum((X - U @ V.T) ** 2)
"""

from __future__ import annotations

from typing import Optional, Union

from repro.lang.dims import Dim, Shape, UNIT
from repro.lang.expr import LAExpr, Literal, UnaryFunc, Var

DimLike = Union[Dim, int, str]


def _as_dim(value: DimLike, default_prefix: str) -> Dim:
    if isinstance(value, Dim):
        return value
    if isinstance(value, int):
        return Dim.fresh(default_prefix, value)
    if isinstance(value, str):
        return Dim(value)
    raise TypeError(f"cannot interpret {value!r} as a dimension")


def Matrix(
    name: str,
    rows: DimLike,
    cols: DimLike,
    sparsity: Optional[float] = None,
) -> Var:
    """Declare an input matrix of shape ``rows x cols``."""
    return Var(name, Shape(_as_dim(rows, "r"), _as_dim(cols, "c")), sparsity)


def Vector(name: str, rows: DimLike, sparsity: Optional[float] = None) -> Var:
    """Declare an input column vector of length ``rows``."""
    return Var(name, Shape(_as_dim(rows, "r"), UNIT), sparsity)


def RowVector(name: str, cols: DimLike, sparsity: Optional[float] = None) -> Var:
    """Declare an input row vector of length ``cols``."""
    return Var(name, Shape(UNIT, _as_dim(cols, "c")), sparsity)


def Scalar(name: str) -> Var:
    """Declare a scalar input."""
    return Var(name, Shape(UNIT, UNIT))


def const(value: float) -> Literal:
    """A scalar literal."""
    return Literal(float(value))


def sigmoid(expr: LAExpr) -> UnaryFunc:
    """Element-wise logistic function ``1 / (1 + exp(-x))``."""
    return UnaryFunc("sigmoid", expr)


def exp(expr: LAExpr) -> UnaryFunc:
    """Element-wise exponential."""
    return UnaryFunc("exp", expr)


def log(expr: LAExpr) -> UnaryFunc:
    """Element-wise natural logarithm."""
    return UnaryFunc("log", expr)


def sqrt(expr: LAExpr) -> UnaryFunc:
    """Element-wise square root."""
    return UnaryFunc("sqrt", expr)


def sign(expr: LAExpr) -> UnaryFunc:
    """Element-wise sign."""
    return UnaryFunc("sign", expr)


def abs_(expr: LAExpr) -> UnaryFunc:
    """Element-wise absolute value."""
    return UnaryFunc("abs", expr)
