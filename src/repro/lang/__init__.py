"""Linear-algebra expression IR.

This package defines the small linear-algebra language of Table 1 in the
SPORES paper (mmult, elemmult, elemplus, rowagg, colagg, agg, transpose)
plus the auxiliary operators SystemML programs use in practice (minus,
division, powers, scalar ops, unary math functions, and the fused operators
``wsloss``, ``sprop`` and ``mmchain``).

The public surface is:

* :class:`~repro.lang.dims.Dim` and :class:`~repro.lang.dims.Shape` —
  symbolic dimensions used for shape inference and for naming relational
  indices during lowering.
* :class:`~repro.lang.expr.LAExpr` and its concrete node classes — an
  immutable expression tree / DAG.
* :mod:`repro.lang.builder` — ergonomic constructors (``Matrix``,
  ``Vector``, ``Scalar``) with operator overloading so workloads read like
  the DML scripts they reproduce.
* :mod:`repro.lang.dag` — DAG utilities (topological order, common
  subexpression detection, substitution, node counting).
* :mod:`repro.lang.parser` — a parser for a DML-like surface syntax, used
  by the SystemML rewrite catalog and by tests.
"""

from repro.lang.dims import Dim, Shape, SCALAR_SHAPE
from repro.lang.expr import (
    LAExpr,
    Var,
    Literal,
    FilledMatrix,
    MatMul,
    ElemMul,
    ElemPlus,
    ElemMinus,
    ElemDiv,
    Transpose,
    RowSums,
    ColSums,
    Sum,
    Power,
    Neg,
    UnaryFunc,
    CastScalar,
    WSLoss,
    WCeMM,
    WDivMM,
    SProp,
    MMChain,
)
from repro.lang.builder import Matrix, Vector, RowVector, Scalar, const, sigmoid, exp, log, sqrt, sign, abs_
from repro.lang import dag
from repro.lang.parser import parse_expr, ParseError

__all__ = [
    "Dim",
    "Shape",
    "SCALAR_SHAPE",
    "LAExpr",
    "Var",
    "Literal",
    "FilledMatrix",
    "MatMul",
    "ElemMul",
    "ElemPlus",
    "ElemMinus",
    "ElemDiv",
    "Transpose",
    "RowSums",
    "ColSums",
    "Sum",
    "Power",
    "Neg",
    "UnaryFunc",
    "CastScalar",
    "WSLoss",
    "WCeMM",
    "WDivMM",
    "SProp",
    "MMChain",
    "Matrix",
    "Vector",
    "RowVector",
    "Scalar",
    "const",
    "sigmoid",
    "exp",
    "log",
    "sqrt",
    "sign",
    "abs_",
    "dag",
    "parse_expr",
    "ParseError",
]
