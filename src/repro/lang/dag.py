"""DAG utilities over LA expressions.

SystemML optimizes HOP DAGs rather than trees: the same sub-expression may
feed several consumers.  In this library structural sharing is represented
by value equality of the frozen expression nodes, so two references to
``U @ V.T`` are "the same node" whether or not they are the same Python
object.  The helpers here provide the DAG view the optimizer and the cost
model need: topological order over distinct nodes, consumer counts (for CSE
heuristics), substitution, and statistics.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List

from repro.lang.expr import LAExpr, Var


def postorder(root: LAExpr) -> List[LAExpr]:
    """Distinct nodes of the DAG in post-order (children before parents)."""
    seen: Dict[LAExpr, None] = {}
    order: List[LAExpr] = []

    def visit(node: LAExpr) -> None:
        if node in seen:
            return
        seen[node] = None
        for child in node.children:
            visit(child)
        order.append(node)

    visit(root)
    return order


def node_count(root: LAExpr) -> int:
    """Number of *distinct* nodes in the DAG."""
    return len(postorder(root))


def consumer_counts(root: LAExpr) -> Counter:
    """How many distinct parents reference each node.

    The root is counted once (as if it had one external consumer).  SystemML
    uses the analogous statistic to guard rewrites that would destroy a
    shared common subexpression.
    """
    counts: Counter = Counter()
    counts[root] += 1
    for node in postorder(root):
        for child in node.children:
            counts[child] += 1
    return counts


def shared_subexpressions(root: LAExpr) -> List[LAExpr]:
    """Non-leaf nodes referenced by more than one parent."""
    counts = consumer_counts(root)
    return [
        node
        for node in postorder(root)
        if counts[node] > 1 and node.children
    ]


def variables(root: LAExpr) -> List[Var]:
    """Distinct input variables, in first-occurrence order."""
    result: List[Var] = []
    seen = set()
    for node in postorder(root):
        if isinstance(node, Var) and node.name not in seen:
            seen.add(node.name)
            result.append(node)
    return result


def substitute(root: LAExpr, mapping: Dict[LAExpr, LAExpr]) -> LAExpr:
    """Replace every occurrence of the mapping's keys, bottom-up.

    The mapping is applied after children have been rewritten, so replacing
    ``X`` inside ``sum(X * X)`` rewrites both occurrences.
    """
    cache: Dict[LAExpr, LAExpr] = {}

    def visit(node: LAExpr) -> LAExpr:
        if node in cache:
            return cache[node]
        new_children = [visit(child) for child in node.children]
        rebuilt = node if not node.children else node.with_children(new_children)
        rebuilt = mapping.get(rebuilt, rebuilt)
        # Also allow keys expressed in terms of the original node.
        if rebuilt is node:
            rebuilt = mapping.get(node, node)
        cache[node] = rebuilt
        return rebuilt

    return visit(root)


def substitute_vars(root: LAExpr, bindings: Dict[str, LAExpr]) -> LAExpr:
    """Replace variables by name."""
    mapping: Dict[LAExpr, LAExpr] = {}
    for node in postorder(root):
        if isinstance(node, Var) and node.name in bindings:
            mapping[node] = bindings[node.name]
    return substitute(root, mapping)


def transform_bottom_up(root: LAExpr, fn: Callable[[LAExpr], LAExpr]) -> LAExpr:
    """Apply ``fn`` to every node bottom-up, rebuilding parents as needed."""
    cache: Dict[LAExpr, LAExpr] = {}

    def visit(node: LAExpr) -> LAExpr:
        if node in cache:
            return cache[node]
        new_children = [visit(child) for child in node.children]
        rebuilt = node if list(node.children) == new_children else node.with_children(new_children)
        result = fn(rebuilt)
        cache[node] = result
        return result

    return visit(root)


def operator_histogram(root: LAExpr) -> Counter:
    """Count distinct nodes per operator class name (for diagnostics)."""
    histogram: Counter = Counter()
    for node in postorder(root):
        histogram[type(node).__name__] += 1
    return histogram


def contains(root: LAExpr, needle: LAExpr) -> bool:
    """Whether ``needle`` occurs as a sub-expression of ``root``."""
    return any(node == needle for node in postorder(root))


def depth(root: LAExpr) -> int:
    """Height of the expression DAG."""
    cache: Dict[LAExpr, int] = {}

    def visit(node: LAExpr) -> int:
        if node in cache:
            return cache[node]
        if not node.children:
            result = 1
        else:
            result = 1 + max(visit(child) for child in node.children)
        cache[node] = result
        return result

    return visit(root)
