"""Pretty-printer producing a DML-like surface syntax for LA expressions.

The output round-trips through :func:`repro.lang.parser.parse_expr` for the
operators the parser supports, which keeps the SystemML rewrite catalog
(strings) and the internal IR in one notation.
"""

from __future__ import annotations

from repro.lang import expr as e


def pretty(node: e.LAExpr) -> str:
    """Render ``node`` as a DML-like string."""
    return _render(node, 0)


# precedence levels: higher binds tighter
_PREC_ADD = 1
_PREC_MUL = 2
_PREC_MATMUL = 3
_PREC_UNARY = 4
_PREC_POW = 5
_PREC_ATOM = 6


def _paren(text: str, inner_prec: int, outer_prec: int) -> str:
    if inner_prec < outer_prec:
        return f"({text})"
    return text


def _render(node: e.LAExpr, outer_prec: int) -> str:
    if isinstance(node, e.Var):
        return node.name
    if isinstance(node, e.Literal):
        value = node.value
        if value == int(value):
            return str(int(value))
        return repr(value)
    if isinstance(node, e.FilledMatrix):
        value = node.value
        value_text = str(int(value)) if value == int(value) else repr(value)
        rows = node.fill_shape.rows
        cols = node.fill_shape.cols
        rows_text = str(rows.size) if rows.size is not None else rows.name
        cols_text = str(cols.size) if cols.size is not None else cols.name
        return f"matrix({value_text}, {rows_text}, {cols_text})"
    if isinstance(node, e.MatMul):
        text = f"{_render(node.left, _PREC_MATMUL)} %*% {_render(node.right, _PREC_MATMUL + 1)}"
        return _paren(text, _PREC_MATMUL, outer_prec)
    if isinstance(node, e.ElemMul):
        text = f"{_render(node.left, _PREC_MUL)} * {_render(node.right, _PREC_MUL + 1)}"
        return _paren(text, _PREC_MUL, outer_prec)
    if isinstance(node, e.ElemDiv):
        text = f"{_render(node.left, _PREC_MUL)} / {_render(node.right, _PREC_MUL + 1)}"
        return _paren(text, _PREC_MUL, outer_prec)
    if isinstance(node, e.ElemPlus):
        text = f"{_render(node.left, _PREC_ADD)} + {_render(node.right, _PREC_ADD + 1)}"
        return _paren(text, _PREC_ADD, outer_prec)
    if isinstance(node, e.ElemMinus):
        text = f"{_render(node.left, _PREC_ADD)} - {_render(node.right, _PREC_ADD + 1)}"
        return _paren(text, _PREC_ADD, outer_prec)
    if isinstance(node, e.Power):
        exponent = node.exponent
        exp_text = str(int(exponent)) if exponent == int(exponent) else repr(exponent)
        text = f"{_render(node.child, _PREC_POW + 1)} ^ {exp_text}"
        return _paren(text, _PREC_POW, outer_prec)
    if isinstance(node, e.Neg):
        text = f"-{_render(node.child, _PREC_UNARY)}"
        return _paren(text, _PREC_UNARY, outer_prec)
    if isinstance(node, e.Transpose):
        return f"t({_render(node.child, 0)})"
    if isinstance(node, e.RowSums):
        return f"rowSums({_render(node.child, 0)})"
    if isinstance(node, e.ColSums):
        return f"colSums({_render(node.child, 0)})"
    if isinstance(node, e.Sum):
        return f"sum({_render(node.child, 0)})"
    if isinstance(node, e.CastScalar):
        return f"as.scalar({_render(node.child, 0)})"
    if isinstance(node, e.UnaryFunc):
        return f"{node.func}({_render(node.child, 0)})"
    if isinstance(node, e.WSLoss):
        args = ", ".join(_render(c, 0) for c in node.children)
        return f"wsloss({args})"
    if isinstance(node, e.WCeMM):
        args = ", ".join(_render(c, 0) for c in node.children)
        return f"wcemm({args})"
    if isinstance(node, e.WDivMM):
        args = ", ".join(_render(c, 0) for c in node.children)
        side = "left" if node.multiply_left else "right"
        return f"wdivmm({args}, {side})"
    if isinstance(node, e.SProp):
        return f"sprop({_render(node.child, 0)})"
    if isinstance(node, e.MMChain):
        args = ", ".join(_render(c, 0) for c in node.children)
        return f"mmchain({args})"
    raise TypeError(f"cannot pretty-print {type(node).__name__}")
