"""Immutable LA expression nodes.

Every node is a frozen, hashable value object.  Structural sharing is
encouraged: building an expression that uses the same sub-expression twice
keeps a single Python object, and :mod:`repro.lang.dag` exploits ``id()``
sharing to detect common subexpressions the way SystemML's HOP DAG does.

The operator set follows Table 1 of the paper plus the extra operators the
evaluation workloads need:

==============  =====================================================
node            meaning
==============  =====================================================
``Var``         a named input matrix / vector / scalar
``Literal``     a scalar constant
``MatMul``      matrix multiplication ``A %*% B``
``ElemMul``     element-wise (Hadamard) multiplication ``A * B``
``ElemPlus``    element-wise addition ``A + B``
``ElemMinus``   element-wise subtraction ``A - B``
``ElemDiv``     element-wise division ``A / B``
``Transpose``   ``t(A)``
``RowSums``     row aggregation ``rowSums(A)`` (M x N -> M x 1)
``ColSums``     column aggregation ``colSums(A)`` (M x N -> 1 x N)
``Sum``         full aggregation ``sum(A)`` (M x N -> 1 x 1)
``Power``       element-wise power with a constant exponent ``A ^ k``
``Neg``         unary minus ``-A``
``UnaryFunc``   element-wise math function (exp, log, sigmoid, ...)
``CastScalar``  ``as.scalar(A)`` for 1x1 matrices
``WSLoss``      fused weighted-squared-loss ``sum(W * (X - U %*% t(V))^2)``
``SProp``       fused sample proportion ``P * (1 - P)``
``MMChain``     fused matrix-multiply chain ``t(X) %*% (w * (X %*% v))``
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from repro.lang.dims import (
    SCALAR_SHAPE,
    DimensionError,
    Shape,
    UNIT,
    broadcast_shapes,
    matmul_shape,
    same_dim,
)


@dataclass(frozen=True)
class LAExpr:
    """Base class for all LA expression nodes."""

    @property
    def shape(self) -> Shape:
        raise NotImplementedError

    @property
    def children(self) -> Tuple["LAExpr", ...]:
        return ()

    def with_children(self, children: Sequence["LAExpr"]) -> "LAExpr":
        """Rebuild this node with new children (same arity and payload)."""
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    # -- convenience operators -------------------------------------------------
    def __matmul__(self, other: "LAExpr") -> "LAExpr":
        return MatMul(self, _coerce(other))

    def __mul__(self, other) -> "LAExpr":
        return ElemMul(self, _coerce(other))

    def __rmul__(self, other) -> "LAExpr":
        return ElemMul(_coerce(other), self)

    def __add__(self, other) -> "LAExpr":
        return ElemPlus(self, _coerce(other))

    def __radd__(self, other) -> "LAExpr":
        return ElemPlus(_coerce(other), self)

    def __sub__(self, other) -> "LAExpr":
        return ElemMinus(self, _coerce(other))

    def __rsub__(self, other) -> "LAExpr":
        return ElemMinus(_coerce(other), self)

    def __truediv__(self, other) -> "LAExpr":
        return ElemDiv(self, _coerce(other))

    def __rtruediv__(self, other) -> "LAExpr":
        return ElemDiv(_coerce(other), self)

    def __pow__(self, exponent) -> "LAExpr":
        if not isinstance(exponent, (int, float)):
            raise TypeError("exponent must be a Python number")
        return Power(self, float(exponent))

    def __neg__(self) -> "LAExpr":
        return Neg(self)

    @property
    def T(self) -> "LAExpr":
        return Transpose(self)

    # -- structure helpers -----------------------------------------------------
    def walk(self) -> Iterator["LAExpr"]:
        """Yield this node and all descendants, depth first, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of operator nodes in the expression *tree* (with repeats)."""
        return 1 + sum(child.size() for child in self.children)

    def is_scalar(self) -> bool:
        return self.shape.is_scalar

    def pretty(self) -> str:
        """Render a DML-like string for the expression."""
        from repro.lang.printer import pretty

        return pretty(self)

    def __str__(self) -> str:
        return self.pretty()


def _coerce(value) -> LAExpr:
    if isinstance(value, LAExpr):
        return value
    if isinstance(value, (int, float)):
        return Literal(float(value))
    raise TypeError(f"cannot use {value!r} in an LA expression")


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var(LAExpr):
    """A named input matrix, vector or scalar.

    ``sparsity`` is an optional hint in ``[0, 1]`` (fraction of non-zero
    cells, SystemML's convention) used by the cost model.
    """

    name: str
    var_shape: Shape
    sparsity: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.sparsity is not None and not (0.0 <= self.sparsity <= 1.0):
            raise ValueError(f"sparsity of {self.name!r} must be in [0, 1]")

    @property
    def shape(self) -> Shape:
        return self.var_shape

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        if children:
            raise ValueError("Var takes no children")
        return self


@dataclass(frozen=True)
class Literal(LAExpr):
    """A scalar constant."""

    value: float

    @property
    def shape(self) -> Shape:
        return SCALAR_SHAPE


@dataclass(frozen=True)
class FilledMatrix(LAExpr):
    """A constant-filled matrix, DML's ``matrix(value, nrow, ncol)``.

    Used for ones-matrices introduced when broadcasting scalars into unions
    and for the ``matrix(0, ...)`` results of SystemML's empty-block
    rewrites.
    """

    value: float
    fill_shape: Shape

    @property
    def shape(self) -> Shape:
        return self.fill_shape


# ---------------------------------------------------------------------------
# Binary element-wise operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Binary(LAExpr):
    left: LAExpr
    right: LAExpr

    OP = "?"

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        left, right = children
        return type(self)(left, right)

    @property
    def shape(self) -> Shape:
        return broadcast_shapes(self.left.shape, self.right.shape, self.OP)


@dataclass(frozen=True)
class ElemMul(_Binary):
    """Element-wise multiplication ``A * B`` (with scalar/vector broadcast)."""

    OP = "*"


@dataclass(frozen=True)
class ElemPlus(_Binary):
    """Element-wise addition ``A + B``."""

    OP = "+"


@dataclass(frozen=True)
class ElemMinus(_Binary):
    """Element-wise subtraction ``A - B``."""

    OP = "-"


@dataclass(frozen=True)
class ElemDiv(_Binary):
    """Element-wise division ``A / B``."""

    OP = "/"


@dataclass(frozen=True)
class MatMul(LAExpr):
    """Matrix multiplication ``A %*% B``."""

    left: LAExpr
    right: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        left, right = children
        return MatMul(left, right)

    @property
    def shape(self) -> Shape:
        return matmul_shape(self.left.shape, self.right.shape)


# ---------------------------------------------------------------------------
# Unary structural operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Transpose(LAExpr):
    """``t(A)``."""

    child: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return Transpose(child)

    @property
    def shape(self) -> Shape:
        return self.child.shape.transposed()


@dataclass(frozen=True)
class RowSums(LAExpr):
    """``rowSums(A)``: sum along columns, producing an M x 1 column vector."""

    child: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return RowSums(child)

    @property
    def shape(self) -> Shape:
        return Shape(self.child.shape.rows, UNIT)


@dataclass(frozen=True)
class ColSums(LAExpr):
    """``colSums(A)``: sum along rows, producing a 1 x N row vector."""

    child: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return ColSums(child)

    @property
    def shape(self) -> Shape:
        return Shape(UNIT, self.child.shape.cols)


@dataclass(frozen=True)
class Sum(LAExpr):
    """``sum(A)``: aggregate every cell into a scalar."""

    child: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return Sum(child)

    @property
    def shape(self) -> Shape:
        return SCALAR_SHAPE


@dataclass(frozen=True)
class Power(LAExpr):
    """Element-wise power with a constant exponent ``A ^ k``."""

    child: LAExpr
    exponent: float

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return Power(child, self.exponent)

    @property
    def shape(self) -> Shape:
        return self.child.shape


@dataclass(frozen=True)
class Neg(LAExpr):
    """Unary minus ``-A``."""

    child: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return Neg(child)

    @property
    def shape(self) -> Shape:
        return self.child.shape


#: Element-wise functions the runtime knows how to evaluate.
UNARY_FUNCS = ("exp", "log", "sqrt", "abs", "sign", "sigmoid", "round")


@dataclass(frozen=True)
class UnaryFunc(LAExpr):
    """An element-wise math function such as ``exp`` or ``sigmoid``."""

    func: str
    child: LAExpr

    def __post_init__(self) -> None:
        if self.func not in UNARY_FUNCS:
            raise ValueError(f"unknown unary function {self.func!r}")

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return UnaryFunc(self.func, child)

    @property
    def shape(self) -> Shape:
        return self.child.shape


@dataclass(frozen=True)
class CastScalar(LAExpr):
    """``as.scalar(A)``: reinterpret a 1x1 matrix as a scalar."""

    child: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return CastScalar(child)

    @property
    def shape(self) -> Shape:
        return SCALAR_SHAPE


# ---------------------------------------------------------------------------
# Fused operators (SystemML-style)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WSLoss(LAExpr):
    """Fused weighted-squared loss: ``sum(W * (X - U %*% t(V))^2)``.

    The weight ``W`` may be ``None`` (``Literal(1.0)``) for the unweighted
    variant; SystemML's ``wsloss`` supports both.  The fused operator never
    materialises ``U %*% t(V)`` and streams over the non-zeros of ``X``.
    """

    x: LAExpr
    u: LAExpr
    v: LAExpr
    w: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.x, self.u, self.v, self.w)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        x, u, v, w = children
        return WSLoss(x, u, v, w)

    @property
    def shape(self) -> Shape:
        return SCALAR_SHAPE


@dataclass(frozen=True)
class WCeMM(LAExpr):
    """Fused weighted cross-entropy: ``sum(X * log(U %*% V))``.

    SystemML's ``wcemm`` operator: because ``X`` is sparse, only the cells of
    ``U %*% V`` at ``X``'s non-zeros are ever computed, so the dense low-rank
    product is never materialised.
    """

    x: LAExpr
    u: LAExpr
    v: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.x, self.u, self.v)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        x, u, v = children
        return WCeMM(x, u, v)

    @property
    def shape(self) -> Shape:
        return SCALAR_SHAPE


@dataclass(frozen=True)
class WDivMM(LAExpr):
    """Fused weighted-division matrix multiply (SystemML's ``wdivmm``).

    ``multiply_left=True`` computes ``t(U) %*% (X / (U %*% V))`` and
    ``multiply_left=False`` computes ``(X / (U %*% V)) %*% t(V)``; either
    way the dense product ``U %*% V`` is only evaluated at the non-zeros of
    the sparse matrix ``X``.
    """

    x: LAExpr
    u: LAExpr
    v: LAExpr
    multiply_left: bool

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.x, self.u, self.v)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        x, u, v = children
        return WDivMM(x, u, v, self.multiply_left)

    @property
    def shape(self) -> Shape:
        if self.multiply_left:
            return Shape(self.u.shape.cols, self.v.shape.cols)
        return Shape(self.u.shape.rows, self.v.shape.rows)


@dataclass(frozen=True)
class SProp(LAExpr):
    """Fused sample-proportion operator: ``P * (1 - P)``."""

    child: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        (child,) = children
        return SProp(child)

    @property
    def shape(self) -> Shape:
        return self.child.shape


@dataclass(frozen=True)
class MMChain(LAExpr):
    """Fused matrix-multiply chain ``t(X) %*% (w * (X %*% v))``.

    ``w`` may be ``Literal(1.0)`` for the unweighted chain
    ``t(X) %*% (X %*% v)``.  SystemML executes this without materialising
    ``X %*% v`` twice and without transposing ``X``.
    """

    x: LAExpr
    v: LAExpr
    w: LAExpr

    @property
    def children(self) -> Tuple[LAExpr, ...]:
        return (self.x, self.v, self.w)

    def with_children(self, children: Sequence[LAExpr]) -> LAExpr:
        x, v, w = children
        return MMChain(x, v, w)

    @property
    def shape(self) -> Shape:
        x_shape = self.x.shape
        v_shape = self.v.shape
        if not same_dim(x_shape.rows, v_shape.rows) and not same_dim(x_shape.cols, v_shape.rows):
            raise DimensionError("mmchain: v must be conformable with X")
        return Shape(x_shape.cols, v_shape.cols)


#: Concrete node classes by operator name — the registry the plan codec
#: (:mod:`repro.serialize`) resolves node-table entries against.  A node
#: type must be listed here (and handled by the codec's payload rules)
#: before compiled plans containing it can be persisted; an unknown name in
#: a stored plan is a deserialization error, never a silent fallback.
NODE_TYPES = {
    cls.__name__: cls
    for cls in (
        Var,
        Literal,
        FilledMatrix,
        MatMul,
        ElemMul,
        ElemPlus,
        ElemMinus,
        ElemDiv,
        Transpose,
        RowSums,
        ColSums,
        Sum,
        Power,
        Neg,
        UnaryFunc,
        CastScalar,
        WSLoss,
        WCeMM,
        WDivMM,
        SProp,
        MMChain,
    )
}


def is_constant(expr: LAExpr) -> bool:
    """Whether ``expr`` is a literal scalar constant."""
    return isinstance(expr, Literal)


def literal_value(expr: LAExpr) -> Optional[float]:
    """The value of a literal, or ``None`` for non-literals."""
    if isinstance(expr, Literal):
        return expr.value
    return None
