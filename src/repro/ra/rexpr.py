"""RA (RPlan) expression nodes.

The node set mirrors Table 1 of the paper:

* :class:`RVar` — a named input tensor bound to a list of attributes
  (``bind`` fused into the leaf).
* :class:`RLit` — a scalar constant, i.e. a relation of arity zero.
* :class:`RJoin` — n-ary natural join ``*`` (element-wise multiply of
  multiplicities on matching attribute values).
* :class:`RAdd` — n-ary union ``+`` (addition of multiplicities).
* :class:`RSum` — group-by aggregation ``Σ_U`` over a set of attributes.

All nodes are frozen and hashable so they can live in sets, dictionaries and
the e-graph hashcons.  Joins and unions keep their arguments in a canonical
sorted order (both operators are associative and commutative — rules 6 and 7
of R_EQ) which makes structural equality insensitive to argument order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from repro.ra.attrs import Attr


@dataclass(frozen=True)
class RExpr:
    """Base class for RA expression nodes."""

    @property
    def children(self) -> Tuple["RExpr", ...]:
        return ()

    def with_children(self, children: Sequence["RExpr"]) -> "RExpr":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["RExpr"]:
        """Yield this node and all descendants (pre-order, with repeats)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


@dataclass(frozen=True)
class RVar(RExpr):
    """A named input tensor bound to attributes, e.g. ``X(i, j)``.

    ``attrs`` lists the attributes in axis order: ``(row_attr, col_attr)``
    for a matrix, a single attribute for a vector, and the empty tuple for a
    scalar input.
    """

    name: str
    attrs: Tuple[Attr, ...]
    sparsity: Optional[float] = None

    def __post_init__(self) -> None:
        names = [attr.name for attr in self.attrs]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate attribute in RVar {self.name!r}: {names}")

    def __hash__(self) -> int:
        return hash((self.name, self.attrs))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RVar):
            return NotImplemented
        return self.name == other.name and self.attrs == other.attrs


@dataclass(frozen=True)
class RLit(RExpr):
    """A scalar constant: a K-relation of arity zero."""

    value: float


@dataclass(frozen=True)
class RJoin(RExpr):
    """N-ary natural join (``*``).  Arguments are kept sorted canonically."""

    args: Tuple[RExpr, ...]

    @property
    def children(self) -> Tuple[RExpr, ...]:
        return self.args

    def with_children(self, children: Sequence[RExpr]) -> RExpr:
        return rjoin(children)


@dataclass(frozen=True)
class RAdd(RExpr):
    """N-ary union (``+``).  Arguments are kept sorted canonically."""

    args: Tuple[RExpr, ...]

    @property
    def children(self) -> Tuple[RExpr, ...]:
        return self.args

    def with_children(self, children: Sequence[RExpr]) -> RExpr:
        return radd(children)


@dataclass(frozen=True)
class RSum(RExpr):
    """Group-by aggregation ``Σ_indices child``."""

    indices: FrozenSet[Attr]
    child: RExpr

    @property
    def children(self) -> Tuple[RExpr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RExpr]) -> RExpr:
        (child,) = children
        return rsum(self.indices, child)


@dataclass(frozen=True)
class RPlanOutput:
    """A complete RPlan: an RA body plus the unbind (output orientation).

    ``row_attr`` / ``col_attr`` say which free attribute of ``body`` maps to
    the rows / columns of the LA result; ``None`` means the corresponding
    axis has extent one (the result is a vector or a scalar).
    """

    body: RExpr
    row_attr: Optional[Attr]
    col_attr: Optional[Attr]

    def free_attrs(self) -> FrozenSet[Attr]:
        return free_attrs(self.body)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def _sort_key(node: RExpr) -> tuple:
    """A deterministic ordering key for canonicalising n-ary arguments."""
    if isinstance(node, RLit):
        return (0, repr(node.value))
    if isinstance(node, RVar):
        return (1, node.name, tuple(a.name for a in node.attrs))
    if isinstance(node, RSum):
        return (2, tuple(sorted(a.name for a in node.indices)), _sort_key(node.child))
    if isinstance(node, RJoin):
        return (3, tuple(_sort_key(a) for a in node.args))
    if isinstance(node, RAdd):
        return (4, tuple(_sort_key(a) for a in node.args))
    return (5, repr(node))


def rjoin(args: Iterable[RExpr]) -> RExpr:
    """Build a natural join, flattening nested joins and folding literals.

    A single argument is returned unchanged; multiplying by the literal 1 is
    dropped; nested joins are flattened (rule 7: associativity).
    """
    flat: list[RExpr] = []
    literal = 1.0
    worklist = list(args)
    while worklist:
        arg = worklist.pop()
        if isinstance(arg, RJoin):
            worklist.extend(arg.args)
        elif isinstance(arg, RLit):
            literal *= arg.value
        else:
            flat.append(arg)
    if literal != 1.0 or not flat:
        flat.append(RLit(literal))
    flat.sort(key=_sort_key)
    if len(flat) == 1:
        return flat[0]
    return RJoin(tuple(flat))


def radd(args: Iterable[RExpr]) -> RExpr:
    """Build a union, flattening nested unions and folding literals."""
    flat: list[RExpr] = []
    literal = 0.0
    has_literal = False
    for arg in args:
        if isinstance(arg, RAdd):
            for inner in arg.args:
                if isinstance(inner, RLit):
                    literal += inner.value
                    has_literal = True
                else:
                    flat.append(inner)
        elif isinstance(arg, RLit):
            literal += arg.value
            has_literal = True
        else:
            flat.append(arg)
    if has_literal and (literal != 0.0 or not flat):
        flat.append(RLit(literal))
    if not flat:
        return RLit(0.0)
    flat.sort(key=_sort_key)
    if len(flat) == 1:
        return flat[0]
    return RAdd(tuple(flat))


def rsum(indices: Iterable[Attr], child: RExpr) -> RExpr:
    """Build an aggregation, merging nested sums and dropping empty ones."""
    index_set = frozenset(indices)
    if not index_set:
        return child
    if isinstance(child, RSum):
        return rsum(index_set | child.indices, child.child)
    return RSum(index_set, child)


# ---------------------------------------------------------------------------
# Schema queries
# ---------------------------------------------------------------------------


def free_attrs(node: RExpr) -> FrozenSet[Attr]:
    """The free attributes (schema) of an RA expression."""
    if isinstance(node, RVar):
        return frozenset(node.attrs)
    if isinstance(node, RLit):
        return frozenset()
    if isinstance(node, RJoin):
        result: FrozenSet[Attr] = frozenset()
        for arg in node.args:
            result |= free_attrs(arg)
        return result
    if isinstance(node, RAdd):
        result = frozenset()
        for arg in node.args:
            result |= free_attrs(arg)
        return result
    if isinstance(node, RSum):
        return free_attrs(node.child) - node.indices
    raise TypeError(f"unknown RA node {type(node).__name__}")


def all_indices(node: RExpr) -> FrozenSet[Attr]:
    """Every attribute mentioned anywhere (free or bound by an aggregate)."""
    if isinstance(node, RVar):
        return frozenset(node.attrs)
    if isinstance(node, RLit):
        return frozenset()
    if isinstance(node, (RJoin, RAdd)):
        result: FrozenSet[Attr] = frozenset()
        for arg in node.args:
            result |= all_indices(arg)
        return result
    if isinstance(node, RSum):
        return all_indices(node.child) | node.indices
    raise TypeError(f"unknown RA node {type(node).__name__}")


def rename_attrs(node: RExpr, mapping: Dict[str, Attr]) -> RExpr:
    """Rename attributes throughout an RA expression (capture-naive).

    The caller is responsible for choosing a mapping that does not capture:
    this helper renames both free and bound occurrences uniformly and is used
    by the translator (which generates globally unique names) and by the
    canonicalizer (which renames bound indices apart before merging scopes).
    """
    if isinstance(node, RVar):
        new_attrs = tuple(mapping.get(a.name, a) for a in node.attrs)
        return RVar(node.name, new_attrs, node.sparsity)
    if isinstance(node, RLit):
        return node
    if isinstance(node, RJoin):
        return rjoin(rename_attrs(a, mapping) for a in node.args)
    if isinstance(node, RAdd):
        return radd(rename_attrs(a, mapping) for a in node.args)
    if isinstance(node, RSum):
        new_indices = frozenset(mapping.get(a.name, a) for a in node.indices)
        return RSum(new_indices, rename_attrs(node.child, mapping))
    raise TypeError(f"unknown RA node {type(node).__name__}")


def pretty(node: RExpr) -> str:
    """Render an RA expression as readable text."""
    if isinstance(node, RVar):
        if not node.attrs:
            return node.name
        return f"{node.name}({', '.join(a.name for a in node.attrs)})"
    if isinstance(node, RLit):
        value = node.value
        return str(int(value)) if value == int(value) else repr(value)
    if isinstance(node, RJoin):
        return " * ".join(_wrap(a) for a in node.args)
    if isinstance(node, RAdd):
        return " + ".join(_wrap(a) for a in node.args)
    if isinstance(node, RSum):
        names = ",".join(sorted(a.name for a in node.indices))
        return f"Σ_{{{names}}}[{pretty(node.child)}]"
    raise TypeError(f"unknown RA node {type(node).__name__}")


def _wrap(node: RExpr) -> str:
    text = pretty(node)
    if isinstance(node, (RJoin, RAdd)):
        return f"({text})"
    return text
