"""Schema utilities for RA expressions.

The schema of an RA expression is its set of free attributes; equivalent
expressions necessarily share it (Sec. 3.2 of the paper uses this fact as an
E-class invariant).  This module adds validation helpers used by tests and
by the translator, and the schema-compatibility checks the rewrite guards
need.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.ra.attrs import Attr
from repro.ra.rexpr import RAdd, RExpr, RJoin, RLit, RSum, RVar, all_indices, free_attrs


class SchemaError(ValueError):
    """Raised when an RA expression is structurally ill-formed."""


def validate(node: RExpr) -> FrozenSet[Attr]:
    """Check structural well-formedness and return the free attributes.

    Checks performed:

    * every argument of a union has the same schema (unions require
      union-compatible relations);
    * aggregates only bind attributes that actually occur free in their
      child;
    * no aggregate re-binds an attribute that is already bound deeper in the
      same expression (no shadowing — the translator guarantees globally
      unique bound names, and rewrites preserve this invariant because their
      guards are capture-avoiding).
    """
    _check_no_shadowing(node, frozenset())
    return _validate(node)


def _validate(node: RExpr) -> FrozenSet[Attr]:
    if isinstance(node, (RVar, RLit)):
        return free_attrs(node)
    if isinstance(node, RJoin):
        result: FrozenSet[Attr] = frozenset()
        for arg in node.args:
            result |= _validate(arg)
        return result
    if isinstance(node, RAdd):
        schemas = [_validate(arg) for arg in node.args]
        names = {frozenset(a.name for a in s) for s in schemas}
        if len(names) > 1:
            raise SchemaError(
                "union arguments have different schemas: "
                + ", ".join(sorted("{" + ",".join(sorted(n)) + "}" for n in names))
            )
        return schemas[0]
    if isinstance(node, RSum):
        child_schema = _validate(node.child)
        child_names = {a.name for a in child_schema}
        for attr in node.indices:
            if attr.name not in child_names:
                raise SchemaError(
                    f"aggregate binds {attr.name!r} which is not free in its child"
                )
        return frozenset(a for a in child_schema if a not in node.indices)
    raise TypeError(f"unknown RA node {type(node).__name__}")


def _check_no_shadowing(node: RExpr, bound_above: FrozenSet[str]) -> None:
    if isinstance(node, RSum):
        names = {a.name for a in node.indices}
        clash = names & bound_above
        if clash:
            raise SchemaError(f"aggregate shadows bound attribute(s) {sorted(clash)}")
        _check_no_shadowing(node.child, bound_above | names)
    else:
        for child in node.children:
            _check_no_shadowing(child, bound_above)


def arity(node: RExpr) -> int:
    """Number of free attributes."""
    return len(free_attrs(node))


def is_liftable(node: RExpr) -> bool:
    """Whether the schema fits back into linear algebra (at most 2 attrs)."""
    return arity(node) <= 2


def bound_indices(node: RExpr) -> FrozenSet[Attr]:
    """Attributes bound by some aggregate inside ``node``."""
    return all_indices(node) - free_attrs(node)


def attr_by_name(node: RExpr, name: str) -> Optional[Attr]:
    """Find an attribute (free or bound) by name, if present."""
    for attr in all_indices(node):
        if attr.name == name:
            return attr
    return None
