"""Relational-algebra IR ("RPlan") over K-relations.

Following Section 2 of the paper, an RPlan uses only three relational
operators — natural join ``*``, union ``+`` and group-by aggregation ``Σ`` —
over K-relations whose "multiplicity" is a real number.  Matrices enter the
relational world through *bind* (attach index attributes to the two axes)
and leave it through *unbind*; in this IR bind is fused into the leaf node
(:class:`~repro.ra.rexpr.RVar`) and unbind is represented by the
:class:`~repro.ra.rexpr.RPlanOutput` wrapper the translator produces.
"""

from repro.ra.attrs import Attr
from repro.ra.rexpr import (
    RExpr,
    RVar,
    RLit,
    RJoin,
    RAdd,
    RSum,
    RPlanOutput,
    free_attrs,
    all_indices,
    rjoin,
    radd,
    rsum,
)
from repro.ra import schema

__all__ = [
    "Attr",
    "RExpr",
    "RVar",
    "RLit",
    "RJoin",
    "RAdd",
    "RSum",
    "RPlanOutput",
    "free_attrs",
    "all_indices",
    "rjoin",
    "radd",
    "rsum",
    "schema",
]
