"""Attributes (relational index variables) for the RA IR.

An :class:`Attr` names one index dimension of a K-relation.  Its ``size`` is
the dimension it ranges over (``dim(i)`` in rule 5 of R_EQ) and is needed by
the cost model and by the ``Σ_i A = A * dim(i)`` rewrite; it may be ``None``
for purely symbolic reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True, order=True)
class Attr:
    """A named relational index attribute."""

    name: str
    size: Optional[int] = field(default=None, compare=False)

    def with_size(self, size: Optional[int]) -> "Attr":
        return Attr(self.name, size)

    def renamed(self, name: str) -> "Attr":
        return Attr(name, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.size is None:
            return f"Attr({self.name})"
        return f"Attr({self.name}:{self.size})"
