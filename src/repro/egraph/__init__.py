"""E-graph engine for equality saturation (Sec. 3 of the paper).

The engine is a from-scratch implementation of the data structure SPORES
borrows from the ``egg`` library:

* :mod:`repro.egraph.unionfind` — disjoint sets with path compression,
  tracking which e-classes have been merged.
* :mod:`repro.egraph.enode` — hash-consed operator nodes whose children are
  e-class ids; associative-commutative operators keep their children in a
  canonical sorted order (rules 6 and 7 of R_EQ flatten ``*`` and ``+`` into
  n-ary operators, so AC-equivalence is structural here).
* :mod:`repro.egraph.graph` — the e-graph itself: ``add``, ``merge``,
  ``rebuild`` (congruence closure), class invariants (Sec. 3.2) and
  conversion to and from :mod:`repro.ra` expressions.
* :mod:`repro.egraph.analysis` — the class-invariant framework: schema,
  constant folding and sparsity, merged on every union exactly as the paper
  describes.
* :mod:`repro.egraph.rewrite` — the rewrite-rule protocol (searcher/applier
  pairs) used by R_EQ.
* :mod:`repro.egraph.runner` — the saturation loop with the two scheduling
  strategies the paper evaluates: depth-first (apply every match) and
  match sampling (Sec. 3.1, "Dealing with Expansive Rules").
"""

from repro.egraph.unionfind import UnionFind
from repro.egraph.enode import ENode, OP_JOIN, OP_ADD, OP_SUM, OP_VAR, OP_LIT, AC_OPS
from repro.egraph.analysis import ClassData, RAAnalysis
from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Rule, Match
from repro.egraph.runner import Runner, RunnerConfig, RunReport, StopReason

__all__ = [
    "UnionFind",
    "ENode",
    "OP_JOIN",
    "OP_ADD",
    "OP_SUM",
    "OP_VAR",
    "OP_LIT",
    "AC_OPS",
    "ClassData",
    "RAAnalysis",
    "EGraph",
    "Rule",
    "Match",
    "Runner",
    "RunnerConfig",
    "RunReport",
    "StopReason",
]
