"""E-graph engine for equality saturation (Sec. 3 of the paper).

The engine is a from-scratch implementation of the data structure SPORES
borrows from the ``egg`` library, organised around *incremental,
operator-indexed e-matching* and *batched deferred rebuilding* — the two
techniques that keep the per-iteration cost of saturation proportional to
what changed rather than to the size of the graph:

* :mod:`repro.egraph.unionfind` — disjoint sets with path compression,
  tracking which e-classes have been merged.
* :mod:`repro.egraph.enode` — hash-consed operator nodes whose children are
  e-class ids; associative-commutative operators keep their children in a
  canonical sorted order (rules 6 and 7 of R_EQ flatten ``*`` and ``+`` into
  n-ary operators, so AC-equivalence is structural here).  Nodes carry a
  cheap structural ``sort_key`` for deterministic ordering.
* :mod:`repro.egraph.graph` — the e-graph itself: ``add``, ``merge``,
  ``rebuild`` (congruence closure), class invariants (Sec. 3.2) and
  conversion to and from :mod:`repro.ra` expressions.  The graph maintains
  a persistent **operator index** (``op -> classes``, with per-class
  operator buckets) updated in place by add/merge/repair, a **touch log**
  from which searchers derive the set of *dirty* classes changed since
  they last looked, and O(1) live ``num_enodes``/``num_classes`` counters.
  After ``rebuild`` the stored nodes are fully canonical, so matching
  reads the buckets verbatim with no per-access re-canonicalisation.
* :mod:`repro.egraph.analysis` — the class-invariant framework: schema,
  constant folding and sparsity, merged on every union exactly as the paper
  describes.  Invariant improvements count as touches so guarded rules
  re-match affected regions.
* :mod:`repro.egraph.rewrite` — the rewrite-rule protocol: searcher/applier
  pairs whose ``search(egraph, dirty)`` revisits only changed classes;
  rules that need a global view (``factor``, ``pull-add-out-of-sum``)
  declare ``incremental = False`` and full-scan their anchor operator.
* :mod:`repro.egraph.runner` — the saturation loop with the two scheduling
  strategies the paper evaluates: depth-first (apply every match) and
  match sampling (Sec. 3.1, "Dealing with Expansive Rules").  Each
  iteration searches all rules against one clean snapshot, applies the
  scheduled matches, and restores congruence with a single batched
  ``rebuild`` (instead of one per rule); per-rule cursors into the touch
  log drive the incremental searches.
"""

from repro.egraph.unionfind import UnionFind
from repro.egraph.enode import ENode, OP_JOIN, OP_ADD, OP_SUM, OP_VAR, OP_LIT, AC_OPS
from repro.egraph.analysis import ClassData, RAAnalysis
from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Rule, Match
from repro.egraph.runner import Runner, RunnerConfig, RunReport, StopReason

__all__ = [
    "UnionFind",
    "ENode",
    "OP_JOIN",
    "OP_ADD",
    "OP_SUM",
    "OP_VAR",
    "OP_LIT",
    "AC_OPS",
    "ClassData",
    "RAAnalysis",
    "EGraph",
    "Rule",
    "Match",
    "Runner",
    "RunnerConfig",
    "RunReport",
    "StopReason",
]
