"""Class invariants (the paper's Sec. 3.2) as an e-graph analysis.

Every e-class carries a :class:`ClassData` record holding the three
invariants SPORES tracks:

* **schema** — the set of free attributes.  Equivalent RA expressions must
  have the same schema, so merging two classes with different schemas is a
  bug (and is asserted against).  The schema also powers the guard of rule 3
  (``i ∉ Attr(A)``) and the extraction-time pruning of classes with more
  than two free attributes.
* **constant** — if every expression in the class evaluates to a known
  scalar, its value.  As soon as a class is known constant the analysis adds
  the literal e-node to the class, which integrates constant folding with
  the rest of the rewrites ("modify" hook, exactly as described for egg's
  metadata API).
* **sparsity** — the conservative nnz/size estimate of Fig. 12.  Merging two
  classes keeps the tighter (smaller) estimate, improving the cost model as
  saturation proves more expressions equal.

In addition to the paper's three invariants the analysis tracks **bound** —
the set of index *names* bound by aggregates anywhere inside any member of
the class.  It over-approximates across members and is used by the
capture-avoiding guard of the ``A * Σ_i B = Σ_i (A * B)`` rewrite (rule 3):
an index may only be pushed across a factor that mentions it neither free
nor bound, which keeps every expression in the graph well-scoped without a
renaming mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, TYPE_CHECKING

from repro.egraph.enode import ENode, OP_ADD, OP_JOIN, OP_LIT, OP_SUM, OP_VAR
from repro.ra.attrs import Attr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.egraph.graph import EGraph


class SchemaMismatchError(RuntimeError):
    """Two e-classes with different schemas were asserted equal."""


@dataclass(frozen=True)
class ClassData:
    """Invariant data attached to every e-class."""

    schema: FrozenSet[Attr]
    constant: Optional[float]
    sparsity: float
    bound: FrozenSet[str] = frozenset()

    @property
    def arity(self) -> int:
        return len(self.schema)

    @property
    def schema_names(self) -> FrozenSet[str]:
        return frozenset(attr.name for attr in self.schema)


#: Default sparsity assumed for inputs without a hint (fully dense).
DEFAULT_SPARSITY = 1.0


class RAAnalysis:
    """The schema / constant / sparsity analysis over RA e-nodes."""

    def make(self, egraph: "EGraph", node: ENode) -> ClassData:
        """Compute the invariant data of a single e-node from its children."""
        if node.op == OP_VAR:
            name, attrs = node.payload
            sparsity = egraph.var_sparsity.get(name, DEFAULT_SPARSITY)
            return ClassData(frozenset(attrs), None, sparsity, frozenset())
        if node.op == OP_LIT:
            value = float(node.payload)
            return ClassData(frozenset(), value, 0.0 if value == 0.0 else 1.0, frozenset())

        child_data = [egraph.data(c) for c in node.children]
        bound: FrozenSet[str] = frozenset()
        for data in child_data:
            bound = bound | data.bound
        if node.op == OP_JOIN:
            schema: FrozenSet[Attr] = frozenset()
            for data in child_data:
                schema = schema | data.schema
            constant = None
            if all(d.constant is not None for d in child_data) and not schema:
                constant = math.prod(d.constant for d in child_data)
            sparsity = min(d.sparsity for d in child_data)
            return ClassData(schema, constant, sparsity, bound)
        if node.op == OP_ADD:
            schema = child_data[0].schema
            constant = None
            if all(d.constant is not None for d in child_data) and not schema:
                constant = sum(d.constant for d in child_data)
            sparsity = min(1.0, sum(d.sparsity for d in child_data))
            return ClassData(schema, constant, sparsity, bound)
        if node.op == OP_SUM:
            indices: FrozenSet[Attr] = node.payload
            (data,) = child_data
            schema = data.schema - indices
            agg_size = 1
            for attr in indices:
                agg_size *= attr.size if attr.size is not None else 1
            constant = None
            if data.constant is not None and not schema:
                # Rule 5: aggregating a constant multiplies it by the size of
                # the aggregated dimensions.
                constant = data.constant * agg_size
            sparsity = min(1.0, agg_size * data.sparsity)
            bound = bound | frozenset(a.name for a in indices)
            return ClassData(schema, constant, sparsity, bound)
        raise ValueError(f"unknown operator {node.op!r}")

    def merge(self, left: ClassData, right: ClassData) -> ClassData:
        """Merge the invariants of two classes being unioned."""
        left_names = frozenset(a.name for a in left.schema)
        right_names = frozenset(a.name for a in right.schema)
        if left_names != right_names:
            raise SchemaMismatchError(
                f"merged classes have different schemas: {sorted(left_names)} vs {sorted(right_names)}"
            )
        constant = left.constant if left.constant is not None else right.constant
        # Keep attribute sizes if only one side has them.
        schema = left.schema if _has_sizes(left.schema) else right.schema
        return ClassData(
            schema,
            constant,
            min(left.sparsity, right.sparsity),
            left.bound | right.bound,
        )

    def modify(self, egraph: "EGraph", class_id: int) -> None:
        """Constant-fold: materialise a literal e-node for constant classes."""
        data = egraph.data(class_id)
        if data.constant is not None and not data.schema:
            literal = ENode(OP_LIT, float(data.constant), ())
            egraph.add_enode_to_class(literal, class_id)


def _has_sizes(schema: FrozenSet[Attr]) -> bool:
    return all(attr.size is not None for attr in schema)


def join_sparsity(sparsities) -> float:
    """Fig. 12: sparsity of a join is the minimum of its arguments'."""
    return min(sparsities)


def add_sparsity(sparsities) -> float:
    """Fig. 12: sparsity of a union saturates at 1."""
    return min(1.0, sum(sparsities))


def sum_sparsity(sparsity: float, agg_size: int) -> float:
    """Fig. 12: aggregation scales sparsity by the aggregated extent."""
    return min(1.0, agg_size * sparsity)
