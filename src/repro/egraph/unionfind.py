"""Disjoint-set (union-find) structure for e-class ids.

E-class ids are dense non-negative integers handed out by :meth:`make_set`.
``find`` uses path compression; ``union`` is by size and returns the id that
survives as the canonical representative (the e-graph needs to know which of
the two merged classes keeps its metadata).
"""

from __future__ import annotations

from typing import List


class UnionFind:
    """Union-find over integer ids with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        self._size.append(1)
        return new_id

    def find(self, item: int) -> int:
        """Canonical representative of ``item``'s set."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the surviving root."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def same(self, a: int, b: int) -> bool:
        """Whether two ids belong to the same set."""
        return self.find(a) == self.find(b)
