"""The e-graph: a congruence-closed store of equivalent RA expressions.

The implementation follows egg's design (which SPORES builds on):

* e-nodes are hash-consed, so every distinct operator-over-classes exists at
  most once in the whole graph;
* e-classes are disjoint sets of e-nodes managed by a union-find;
* ``merge`` defers congruence maintenance to an explicit ``rebuild`` pass
  (deferred rebuilding), which processes a worklist of dirty classes,
  re-canonicalises their parent e-nodes, and performs the upward merges that
  congruence closure demands;
* every e-class carries analysis data (schema, constant, sparsity) that is
  recomputed for new nodes, merged on unions, and propagated to parents when
  it improves (class invariants, Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.egraph.analysis import ClassData, RAAnalysis
from repro.egraph.enode import ENode, OP_ADD, OP_JOIN, OP_LIT, OP_SUM, OP_VAR
from repro.egraph.unionfind import UnionFind
from repro.ra.rexpr import RAdd, RExpr, RJoin, RLit, RSum, RVar, radd, rjoin, rsum


@dataclass
class EClass:
    """One equivalence class of e-nodes."""

    id: int
    nodes: Set[ENode] = field(default_factory=set)
    parents: List[Tuple[ENode, int]] = field(default_factory=list)
    data: Optional[ClassData] = None


class EGraph:
    """An e-graph over RA e-nodes with schema/constant/sparsity invariants."""

    def __init__(self, analysis: Optional[RAAnalysis] = None) -> None:
        self.analysis = analysis or RAAnalysis()
        self._uf = UnionFind()
        self._classes: Dict[int, EClass] = {}
        self._hashcons: Dict[ENode, int] = {}
        #: sparsity hints for named input tensors (consulted by the analysis)
        self.var_sparsity: Dict[str, float] = {}
        self._pending: List[int] = []
        self._analysis_pending: List[int] = []
        #: number of merges performed since construction (for convergence checks)
        self.merges_performed = 0

    # -- basic queries ---------------------------------------------------------
    def find(self, class_id: int) -> int:
        """Canonical id of the e-class containing ``class_id``."""
        return self._uf.find(class_id)

    def data(self, class_id: int) -> ClassData:
        """Analysis data of an e-class."""
        return self._classes[self.find(class_id)].data

    def class_ids(self) -> List[int]:
        """All canonical e-class ids."""
        return [cid for cid in self._classes if self._uf.find(cid) == cid]

    def nodes(self, class_id: int) -> List[ENode]:
        """Canonicalised e-nodes of a class (duplicates collapsed)."""
        eclass = self._classes[self.find(class_id)]
        canonical = {node.canonicalize(self.find) for node in eclass.nodes}
        return sorted(canonical, key=repr)

    def num_classes(self) -> int:
        return len(self.class_ids())

    def num_enodes(self) -> int:
        return len({node.canonicalize(self.find) for node in self._hashcons})

    def equiv(self, a: int, b: int) -> bool:
        """Whether two class ids have been proven equal."""
        return self._uf.same(a, b)

    # -- construction ----------------------------------------------------------
    def add(self, node: ENode) -> int:
        """Add an e-node, returning the id of its e-class (existing or new)."""
        node = node.canonicalize(self.find)
        existing = self._hashcons.get(node)
        if existing is not None:
            return self.find(existing)
        class_id = self._uf.make_set()
        eclass = EClass(id=class_id, nodes={node})
        self._classes[class_id] = eclass
        self._hashcons[node] = class_id
        for child in node.children:
            self._classes[self.find(child)].parents.append((node, class_id))
        eclass.data = self.analysis.make(self, node)
        self.analysis.modify(self, class_id)
        return self.find(class_id)

    def add_enode_to_class(self, node: ENode, class_id: int) -> None:
        """Assert that ``node`` belongs to ``class_id`` (used by analyses)."""
        node = node.canonicalize(self.find)
        class_id = self.find(class_id)
        existing = self._hashcons.get(node)
        if existing is not None:
            if not self._uf.same(existing, class_id):
                self.merge(existing, class_id)
            return
        self._hashcons[node] = class_id
        self._classes[class_id].nodes.add(node)
        for child in node.children:
            self._classes[self.find(child)].parents.append((node, class_id))

    def merge(self, a: int, b: int) -> int:
        """Assert that two e-classes are equal; returns the surviving id."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        winner = self._uf.union(root_a, root_b)
        loser = root_b if winner == root_a else root_a
        self.merges_performed += 1

        winner_class = self._classes[winner]
        loser_class = self._classes.pop(loser)
        winner_class.nodes |= loser_class.nodes
        winner_class.parents.extend(loser_class.parents)
        old_data = winner_class.data
        winner_class.data = self.analysis.merge(winner_class.data, loser_class.data)
        self.analysis.modify(self, winner)
        self._pending.append(winner)
        if winner_class.data != old_data or winner_class.data != loser_class.data:
            self._analysis_pending.append(winner)
        return winner

    def rebuild(self) -> None:
        """Restore congruence closure and re-propagate analysis data."""
        while self._pending or self._analysis_pending:
            todo = {self.find(cid) for cid in self._pending}
            self._pending.clear()
            for class_id in todo:
                self._repair(class_id)
            analysis_todo = {self.find(cid) for cid in self._analysis_pending}
            self._analysis_pending.clear()
            for class_id in analysis_todo:
                self._propagate_analysis(class_id)

    def _repair(self, class_id: int) -> None:
        class_id = self.find(class_id)
        eclass = self._classes[class_id]
        # Re-canonicalise this class's own nodes.
        eclass.nodes = {node.canonicalize(self.find) for node in eclass.nodes}
        # Repair parent pointers: canonicalising a parent e-node may reveal
        # that two previously distinct parents became congruent.
        new_parents: Dict[ENode, int] = {}
        for parent_node, parent_class in eclass.parents:
            self._hashcons.pop(parent_node, None)
            canonical = parent_node.canonicalize(self.find)
            parent_class = self.find(parent_class)
            if canonical in new_parents and not self._uf.same(new_parents[canonical], parent_class):
                parent_class = self.merge(new_parents[canonical], parent_class)
            existing = self._hashcons.get(canonical)
            if existing is not None and not self._uf.same(existing, parent_class):
                parent_class = self.merge(existing, parent_class)
            self._hashcons[canonical] = self.find(parent_class)
            new_parents[canonical] = self.find(parent_class)
        eclass.parents = [(node, cid) for node, cid in new_parents.items()]

    def _propagate_analysis(self, class_id: int) -> None:
        """Recompute parent analysis data after a child's data improved."""
        class_id = self.find(class_id)
        eclass = self._classes[class_id]
        for parent_node, parent_class in list(eclass.parents):
            parent_class = self.find(parent_class)
            parent = self._classes[parent_class]
            fresh = self.analysis.make(self, parent_node.canonicalize(self.find))
            merged = self.analysis.merge(parent.data, fresh)
            if merged != parent.data:
                parent.data = merged
                self.analysis.modify(self, parent_class)
                self._analysis_pending.append(parent_class)

    # -- conversion from/to RA expressions --------------------------------------
    def add_term(self, expr: RExpr) -> int:
        """Insert an RA expression tree bottom-up and return its class id."""
        if isinstance(expr, RVar):
            if expr.sparsity is not None:
                current = self.var_sparsity.get(expr.name, 1.0)
                self.var_sparsity[expr.name] = min(current, expr.sparsity)
            return self.add(ENode(OP_VAR, (expr.name, expr.attrs), ()))
        if isinstance(expr, RLit):
            return self.add(ENode(OP_LIT, float(expr.value), ()))
        if isinstance(expr, RJoin):
            children = tuple(self.add_term(arg) for arg in expr.args)
            return self.add(ENode(OP_JOIN, None, children))
        if isinstance(expr, RAdd):
            children = tuple(self.add_term(arg) for arg in expr.args)
            return self.add(ENode(OP_ADD, None, children))
        if isinstance(expr, RSum):
            child = self.add_term(expr.child)
            return self.add(ENode(OP_SUM, expr.indices, (child,)))
        raise TypeError(f"cannot add {type(expr).__name__} to the e-graph")

    def extract_any(self, class_id: int, _depth: int = 0) -> RExpr:
        """Extract *some* RA expression from a class (smallest-ish, no cost model).

        Used for debugging and for tests that only need a witness term; the
        real extraction lives in :mod:`repro.extract`.
        """
        from repro.extract.greedy import GreedyExtractor

        return GreedyExtractor(lambda egraph, cid, node: 1.0, node_filter=None).extract(self, class_id).expr

    def enode_to_term(self, node: ENode, chooser) -> RExpr:
        """Rebuild an RA expression from an e-node, choosing child terms via ``chooser``."""
        if node.op == OP_VAR:
            name, attrs = node.payload
            return RVar(name, attrs, self.var_sparsity.get(name))
        if node.op == OP_LIT:
            return RLit(float(node.payload))
        child_terms = [chooser(child) for child in node.children]
        if node.op == OP_JOIN:
            return rjoin(child_terms)
        if node.op == OP_ADD:
            return radd(child_terms)
        if node.op == OP_SUM:
            return rsum(node.payload, child_terms[0])
        raise ValueError(f"unknown operator {node.op!r}")

    # -- diagnostics -------------------------------------------------------------
    def dump(self) -> str:  # pragma: no cover - debugging aid
        lines = []
        for class_id in sorted(self.class_ids()):
            data = self.data(class_id)
            schema = ",".join(sorted(a.name for a in data.schema))
            lines.append(f"class {class_id} [{{{schema}}} sp={data.sparsity:.3g}]")
            for node in self.nodes(class_id):
                lines.append(f"  {node!r}")
        return "\n".join(lines)
