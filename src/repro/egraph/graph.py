"""The e-graph: a congruence-closed store of equivalent RA expressions.

The implementation follows egg's design (which SPORES builds on), extended
with the index structures that make e-matching *incremental* rather than a
whole-graph scan per rule per iteration:

* e-nodes are hash-consed, so every distinct operator-over-classes exists at
  most once in the whole graph;
* e-classes are disjoint sets of e-nodes managed by a union-find;
* **operator index** — the graph maintains ``op -> {canonical class ids}``
  (:meth:`EGraph.classes_with_op`) plus per-class operator buckets
  (:meth:`EGraph.nodes_by_op`).  Both are updated in place by ``add``,
  ``merge`` and the repair pass instead of being rebuilt by scans, so a rule
  that matches on ``sum`` nodes touches exactly the classes that contain
  one;
* **dirty tracking** — every structural or analysis change to a class is
  appended to a monotone touch log.  A searcher records its log position
  (:meth:`EGraph.touch_position`) and later asks for the canonical ids of
  everything touched since (:meth:`EGraph.touched_since`), which is what
  lets the runner re-match only changed regions of the graph;
* **live counters** — ``num_enodes``/``num_classes`` are O(1) counters
  maintained on add/merge/repair (the former full hash-cons scan dominated
  saturation profiles).  ``num_enodes`` may over-approximate between a merge
  and the next ``rebuild`` (congruent duplicates not collapsed yet) and is
  exact on a clean graph;
* ``merge`` defers congruence maintenance to an explicit ``rebuild`` pass
  (deferred, batched rebuilding), which processes a worklist of dirty
  classes, re-canonicalises their nodes *and* the stored forms of their
  parent e-nodes (so a clean graph holds only canonical e-nodes), and
  performs the upward merges that congruence closure demands;
* parent back-pointers are stored as a dict keyed by the parent e-node, so
  repeated ``add``/``merge`` cannot accumulate duplicate entries; congruent
  parents discovered while merging are queued on a deferred-merge worklist
  that ``rebuild`` drains;
* every e-class carries analysis data (schema, constant, sparsity) that is
  recomputed for new nodes, merged on unions, and propagated to parents when
  it improves (class invariants, Sec. 3.2).  Analysis improvements also
  count as touches, since they can enable guarded rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.egraph.analysis import ClassData, RAAnalysis
from repro.egraph.enode import ENode, OP_ADD, OP_JOIN, OP_LIT, OP_SUM, OP_VAR
from repro.egraph.unionfind import UnionFind
from repro.ra.rexpr import RAdd, RExpr, RJoin, RLit, RSum, RVar, radd, rjoin, rsum


@dataclass
class EClass:
    """One equivalence class of e-nodes.

    ``nodes`` and the per-operator buckets in ``by_op`` are insertion-ordered
    dicts used as ordered sets, which keeps match enumeration deterministic
    without any sorting.  ``parents`` maps each parent e-node (canonical at
    insertion time) to its e-class id; keying by the e-node dedups the
    unbounded duplicate accumulation the old list representation suffered.
    """

    id: int
    nodes: Dict[ENode, None] = field(default_factory=dict)
    parents: Dict[ENode, int] = field(default_factory=dict)
    by_op: Dict[str, Dict[ENode, None]] = field(default_factory=dict)
    data: Optional[ClassData] = None


class EGraph:
    """An e-graph over RA e-nodes with schema/constant/sparsity invariants."""

    def __init__(self, analysis: Optional[RAAnalysis] = None) -> None:
        self.analysis = analysis or RAAnalysis()
        self._uf = UnionFind()
        self._classes: Dict[int, EClass] = {}
        self._hashcons: Dict[ENode, int] = {}
        #: sparsity hints for named input tensors (consulted by the analysis)
        self.var_sparsity: Dict[str, float] = {}
        self._pending: List[int] = []
        self._analysis_pending: List[int] = []
        #: congruent parent classes discovered while merging parent dicts;
        #: drained by ``rebuild`` before repairing
        self._deferred_merges: List[Tuple[int, int]] = []
        #: classes whose stored node forms may have gone stale (a child
        #: merged); re-canonicalised in bulk at the end of ``rebuild``
        self._stale: Dict[int, None] = {}
        #: operator index: op -> ordered set of canonical class ids that
        #: contain at least one e-node with that operator
        self._op_classes: Dict[str, Dict[int, None]] = {}
        #: total stored e-nodes (== canonical distinct e-nodes once clean)
        self._enode_count = 0
        #: append-only log of touched class ids (see ``touched_since``)
        self._touch_log: List[int] = []
        #: number of merges performed since construction (for convergence checks)
        self.merges_performed = 0

    # -- basic queries ---------------------------------------------------------
    def find(self, class_id: int) -> int:
        """Canonical id of the e-class containing ``class_id``."""
        return self._uf.find(class_id)

    def data(self, class_id: int) -> ClassData:
        """Analysis data of an e-class."""
        return self._classes[self.find(class_id)].data

    def class_ids(self) -> List[int]:
        """All canonical e-class ids (merged-away ids are evicted eagerly)."""
        return list(self._classes)

    def nodes(self, class_id: int) -> List[ENode]:
        """Canonicalised e-nodes of a class, in a deterministic order.

        On a clean graph (no pending rebuild work) the stored nodes are
        already canonical and are returned without re-canonicalising; the
        ordering uses :attr:`ENode.sort_key` rather than ``repr``, whose
        string formatting used to dominate profiles.
        """
        eclass = self._classes[self.find(class_id)]
        if self.is_clean:
            canonical: Iterable[ENode] = eclass.nodes
        else:
            canonical = {node.canonicalize(self.find): None for node in eclass.nodes}
        return sorted(canonical, key=lambda node: node.sort_key)

    def legacy_nodes(self, class_id: int) -> List[ENode]:
        """The pre-index node access path, kept as a benchmark baseline.

        Before the operator index, stored node forms were lazily stale, so
        every read had to re-canonicalise the whole class and impose an
        order by formatting ``repr`` strings.  The full-scan searcher built
        on this is what ``bench_ematch_index`` compares the index against.
        """
        eclass = self._classes[self.find(class_id)]
        canonical = {node.canonicalize(self.find) for node in eclass.nodes}
        return sorted(canonical, key=repr)

    @property
    def is_clean(self) -> bool:
        """Whether all deferred congruence/analysis work has been rebuilt."""
        return not (
            self._pending
            or self._analysis_pending
            or self._deferred_merges
            or self._stale
        )

    def num_classes(self) -> int:
        return len(self._classes)

    def num_enodes(self) -> int:
        """Number of e-nodes (O(1); exact when clean, an upper bound between
        a merge and the next ``rebuild``)."""
        return self._enode_count

    def equiv(self, a: int, b: int) -> bool:
        """Whether two class ids have been proven equal."""
        return self._uf.same(a, b)

    # -- operator index --------------------------------------------------------
    def classes_with_op(self, op: str) -> List[int]:
        """Canonical ids of the classes containing at least one ``op`` node."""
        index = self._op_classes.get(op)
        return list(index) if index else []

    def nodes_by_op(self, class_id: int, op: str) -> List[ENode]:
        """The ``op`` e-nodes of one class (stored forms; canonical when clean)."""
        bucket = self._classes[self.find(class_id)].by_op.get(op)
        return list(bucket) if bucket else []

    # -- dirty tracking --------------------------------------------------------
    def touch_position(self) -> int:
        """Current position in the touch log (pass to ``touched_since``)."""
        return len(self._touch_log)

    def touched_since(self, position: int) -> FrozenSet[int]:
        """Canonical ids of every class touched at or after ``position``.

        A class is *touched* when it gains an e-node, wins a merge, has its
        stored nodes re-canonicalised by repair, or its analysis data
        improves — i.e. whenever new matches rooted at it (or at a parent
        that looks one level down into it) may have appeared.
        """
        return frozenset(self.find(cid) for cid in self._touch_log[position:])

    def _touch(self, class_id: int) -> None:
        self._touch_log.append(class_id)

    # -- index maintenance helpers ---------------------------------------------
    def _attach_node(self, eclass: EClass, node: ENode) -> None:
        """Record ``node`` in a class's node set, buckets, index and counter."""
        if node in eclass.nodes:
            return
        eclass.nodes[node] = None
        eclass.by_op.setdefault(node.op, {})[node] = None
        self._op_classes.setdefault(node.op, {})[eclass.id] = None
        self._enode_count += 1
        self._touch(eclass.id)

    def _canonicalize_nodes(self, class_id: int) -> None:
        """Re-canonicalise one class's stored nodes (collapsing duplicates)."""
        class_id = self.find(class_id)
        eclass = self._classes[class_id]
        new_nodes: Dict[ENode, None] = {}
        for node in eclass.nodes:
            new_nodes[node.canonicalize(self.find)] = None
        if new_nodes.keys() != eclass.nodes.keys():
            self._enode_count -= len(eclass.nodes) - len(new_nodes)
            eclass.nodes = new_nodes
            by_op: Dict[str, Dict[ENode, None]] = {}
            for node in new_nodes:
                by_op.setdefault(node.op, {})[node] = None
            eclass.by_op = by_op
            self._touch(class_id)

    def _merge_parent_entry(self, parents: Dict[ENode, int], node: ENode, class_id: int) -> None:
        """Insert a parent entry, deferring the merge of congruent parents."""
        existing = parents.get(node)
        if existing is None:
            parents[node] = class_id
        elif not self._uf.same(existing, class_id):
            self._deferred_merges.append((existing, class_id))

    # -- construction ----------------------------------------------------------
    def add(self, node: ENode) -> int:
        """Add an e-node, returning the id of its e-class (existing or new)."""
        node = node.canonicalize(self.find)
        existing = self._hashcons.get(node)
        if existing is not None:
            return self.find(existing)
        class_id = self._uf.make_set()
        eclass = EClass(id=class_id)
        self._classes[class_id] = eclass
        self._hashcons[node] = class_id
        self._attach_node(eclass, node)
        for child in node.children:
            self._classes[self.find(child)].parents[node] = class_id
        eclass.data = self.analysis.make(self, node)
        self.analysis.modify(self, class_id)
        return self.find(class_id)

    def add_enode_to_class(self, node: ENode, class_id: int) -> None:
        """Assert that ``node`` belongs to ``class_id`` (used by analyses)."""
        node = node.canonicalize(self.find)
        class_id = self.find(class_id)
        existing = self._hashcons.get(node)
        if existing is not None:
            if not self._uf.same(existing, class_id):
                self.merge(existing, class_id)
            return
        self._hashcons[node] = class_id
        self._attach_node(self._classes[class_id], node)
        for child in node.children:
            self._merge_parent_entry(self._classes[self.find(child)].parents, node, class_id)

    def merge(self, a: int, b: int) -> int:
        """Assert that two e-classes are equal; returns the surviving id."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        winner = self._uf.union(root_a, root_b)
        loser = root_b if winner == root_a else root_a
        self.merges_performed += 1

        winner_class = self._classes[winner]
        loser_class = self._classes.pop(loser)
        # Move nodes and operator buckets wholesale, keeping the counter in
        # step (shared stored forms collapse immediately; congruent-but-not-
        # identical forms collapse at the next repair).
        for node in loser_class.nodes:
            if node in winner_class.nodes:
                self._enode_count -= 1
            else:
                winner_class.nodes[node] = None
        for op, bucket in loser_class.by_op.items():
            winner_class.by_op.setdefault(op, {}).update(bucket)
            index = self._op_classes.setdefault(op, {})
            index.pop(loser, None)
            index[winner] = None
        for parent_node, parent_class in loser_class.parents.items():
            self._merge_parent_entry(winner_class.parents, parent_node, parent_class)

        old_data = winner_class.data
        winner_class.data = self.analysis.merge(winner_class.data, loser_class.data)
        self.analysis.modify(self, winner)
        self._pending.append(winner)
        self._touch(winner)
        if winner_class.data != old_data or winner_class.data != loser_class.data:
            self._analysis_pending.append(winner)
        return winner

    def rebuild(self) -> None:
        """Restore congruence closure and re-propagate analysis data.

        One call processes *all* deferred work in batched rounds: congruent
        parents queued during merges, the repair worklist, then analysis
        propagation — exactly egg's deferred-rebuild loop.  Once congruence
        reaches a fixpoint, classes whose stored node forms went stale are
        re-canonicalised in bulk, so a clean graph holds only canonical
        e-nodes and the operator buckets can be matched without rewriting.
        """
        while True:
            while self._pending or self._analysis_pending or self._deferred_merges:
                while self._deferred_merges:
                    deferred_a, deferred_b = self._deferred_merges.pop()
                    self.merge(deferred_a, deferred_b)
                todo = {self.find(cid) for cid in self._pending}
                self._pending.clear()
                for class_id in todo:
                    self._repair(class_id)
                analysis_todo = {self.find(cid) for cid in self._analysis_pending}
                self._analysis_pending.clear()
                for class_id in analysis_todo:
                    self._propagate_analysis(class_id)
            if not self._stale:
                break
            stale = list(self._stale)
            self._stale.clear()
            for class_id in stale:
                self._canonicalize_nodes(class_id)

    def _repair(self, class_id: int) -> None:
        class_id = self.find(class_id)
        eclass = self._classes[class_id]
        # Re-canonicalise this class's own nodes (collapsing duplicates).
        self._canonicalize_nodes(class_id)
        # Repair parent pointers: canonicalising a parent e-node may reveal
        # that two previously distinct parents became congruent.  Iterate a
        # snapshot — the merges below can mutate parent dicts (including this
        # class's own, through cycles).
        snapshot = list(eclass.parents.items())
        original_keys = set(eclass.parents.keys())
        repaired: Dict[ENode, int] = {}
        for parent_node, parent_class in snapshot:
            self._hashcons.pop(parent_node, None)
            canonical = parent_node.canonicalize(self.find)
            parent_class = self.find(parent_class)
            if canonical in repaired and not self._uf.same(repaired[canonical], parent_class):
                parent_class = self.merge(repaired[canonical], parent_class)
            existing = self._hashcons.get(canonical)
            if existing is not None and not self._uf.same(existing, parent_class):
                parent_class = self.merge(existing, parent_class)
            parent_class = self.find(parent_class)
            self._hashcons[canonical] = parent_class
            repaired[canonical] = parent_class
            # The parent's class stores some (possibly older) form of this
            # node; queue it for bulk re-canonicalisation once congruence
            # reaches a fixpoint.
            if canonical != parent_node:
                self._stale[parent_class] = None
        # This class may have gained parents (or even been merged away) while
        # repairing; fold anything that appeared mid-loop into the result.
        target = self._classes[self.find(class_id)]
        merged_in = [(n, c) for n, c in target.parents.items() if n not in original_keys]
        target.parents = repaired
        for parent_node, parent_class in merged_in:
            self._merge_parent_entry(target.parents, parent_node, parent_class)

    def _propagate_analysis(self, class_id: int) -> None:
        """Recompute parent analysis data after a child's data improved."""
        class_id = self.find(class_id)
        eclass = self._classes[class_id]
        for parent_node, parent_class in list(eclass.parents.items()):
            parent_class = self.find(parent_class)
            parent = self._classes[parent_class]
            fresh = self.analysis.make(self, parent_node.canonicalize(self.find))
            merged = self.analysis.merge(parent.data, fresh)
            if merged != parent.data:
                parent.data = merged
                self.analysis.modify(self, parent_class)
                self._analysis_pending.append(parent_class)
                self._touch(parent_class)

    # -- conversion from/to RA expressions --------------------------------------
    def add_term(self, expr: RExpr) -> int:
        """Insert an RA expression tree bottom-up and return its class id."""
        if isinstance(expr, RVar):
            if expr.sparsity is not None:
                current = self.var_sparsity.get(expr.name, 1.0)
                self.var_sparsity[expr.name] = min(current, expr.sparsity)
            return self.add(ENode(OP_VAR, (expr.name, expr.attrs), ()))
        if isinstance(expr, RLit):
            return self.add(ENode(OP_LIT, float(expr.value), ()))
        if isinstance(expr, RJoin):
            children = tuple(self.add_term(arg) for arg in expr.args)
            return self.add(ENode(OP_JOIN, None, children))
        if isinstance(expr, RAdd):
            children = tuple(self.add_term(arg) for arg in expr.args)
            return self.add(ENode(OP_ADD, None, children))
        if isinstance(expr, RSum):
            child = self.add_term(expr.child)
            return self.add(ENode(OP_SUM, expr.indices, (child,)))
        raise TypeError(f"cannot add {type(expr).__name__} to the e-graph")

    def extract_any(self, class_id: int) -> RExpr:
        """Extract *some* RA expression from a class (smallest-ish, no cost model).

        Used for debugging and for tests that only need a witness term; the
        real extraction lives in :mod:`repro.extract`.
        """
        from repro.extract.greedy import GreedyExtractor

        return GreedyExtractor(lambda egraph, cid, node: 1.0, node_filter=None).extract(self, class_id).expr

    def enode_to_term(self, node: ENode, chooser) -> RExpr:
        """Rebuild an RA expression from an e-node, choosing child terms via ``chooser``."""
        if node.op == OP_VAR:
            name, attrs = node.payload
            return RVar(name, attrs, self.var_sparsity.get(name))
        if node.op == OP_LIT:
            return RLit(float(node.payload))
        child_terms = [chooser(child) for child in node.children]
        if node.op == OP_JOIN:
            return rjoin(child_terms)
        if node.op == OP_ADD:
            return radd(child_terms)
        if node.op == OP_SUM:
            return rsum(node.payload, child_terms[0])
        raise ValueError(f"unknown operator {node.op!r}")

    # -- diagnostics -------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert index/counter consistency on a clean graph (tests only).

        Verifies, against ground truth recomputed by scanning:

        * the stored nodes of every class are canonical and partitioned
          exactly by the per-class operator buckets;
        * the operator index covers every (op, class) pair;
        * the hash-cons maps every canonical stored node to its class, and
          no two classes store the same canonical node;
        * ``num_enodes``/``num_classes`` match the recomputed counts;
        * every stored node is registered as a parent of each of its
          children.
        """
        assert self.is_clean, "check_invariants requires a rebuilt graph"
        seen_nodes: Dict[ENode, int] = {}
        total = 0
        # Parent keys may be stale (pre-merge) forms until their own class is
        # repaired; compare against the canonicalised key set per class.
        canonical_parents: Dict[int, FrozenSet[ENode]] = {}

        def parent_keys(class_id: int) -> FrozenSet[ENode]:
            if class_id not in canonical_parents:
                canonical_parents[class_id] = frozenset(
                    parent.canonicalize(self.find)
                    for parent in self._classes[class_id].parents
                )
            return canonical_parents[class_id]
        for class_id, eclass in self._classes.items():
            assert self.find(class_id) == class_id, f"non-canonical class {class_id}"
            bucket_union: Dict[ENode, None] = {}
            for op, bucket in eclass.by_op.items():
                for node in bucket:
                    assert node.op == op, f"node {node!r} in wrong bucket {op!r}"
                    bucket_union[node] = None
                if bucket:
                    assert class_id in self._op_classes.get(op, {}), (
                        f"class {class_id} missing from op index for {op!r}"
                    )
            assert bucket_union.keys() == eclass.nodes.keys(), (
                f"buckets of class {class_id} do not partition its nodes"
            )
            for node in eclass.nodes:
                assert node.canonicalize(self.find) == node, (
                    f"stale stored node {node!r} in class {class_id}"
                )
                assert node not in seen_nodes, (
                    f"node {node!r} stored in classes {seen_nodes[node]} and {class_id}"
                )
                seen_nodes[node] = class_id
                assert self.find(self._hashcons[node]) == class_id, (
                    f"hashcons maps {node!r} elsewhere"
                )
                for child in node.children:
                    child_id = self.find(child)
                    assert node in parent_keys(child_id), (
                        f"{node!r} missing from parents of child {child}"
                    )
            total += len(eclass.nodes)
        assert total == self._enode_count, (
            f"enode counter {self._enode_count} != recomputed {total}"
        )
        assert self.num_classes() == len(self._classes)

    def dump(self) -> str:  # pragma: no cover - debugging aid
        lines = []
        for class_id in sorted(self.class_ids()):
            data = self.data(class_id)
            schema = ",".join(sorted(a.name for a in data.schema))
            lines.append(f"class {class_id} [{{{schema}}} sp={data.sparsity:.3g}]")
            for node in self.nodes(class_id):
                lines.append(f"  {node!r}")
        return "\n".join(lines)
