"""The saturation loop (Fig. 8 of the paper) with match scheduling.

Two scheduling strategies are implemented, matching Sec. 3.1 and the
compile-time experiments of Sec. 4.3:

* **depth-first** (``"dfs"``): every match of every rule is applied on every
  iteration.  Complete but explodes on expansive rules (associativity /
  commutativity regrouping), which is why the paper's GLM and SVM runs time
  out under this strategy.
* **sampling** (``"sampling"``): each rule applies at most ``sample_limit``
  matches per iteration.  The draw is a seeded pseudo-random selection —
  every match gets a CRC-derived priority from ``(seed, iteration, rule)``
  and its own key, and the ``sample_limit`` smallest priorities win via a
  ``heapq.nsmallest`` pass (O(n log k), no full sort).  Because priorities
  depend only on the match keys, the draw is identical however the match
  list was produced (indexed or scan search, any enumeration order).

Each iteration is **batched**: all rules search the same clean e-graph
snapshot, then all scheduled matches are applied, then a single ``rebuild``
restores congruence — instead of the former rebuild-per-rule loop.  Rules
are searched *incrementally*: the runner keeps a per-rule cursor into the
e-graph's touch log and hands ``search`` only the classes that changed since
that rule last looked.  Matches dropped by sampling are not lost: their root
classes are carried into the rule's next dirty set, so the cursor can keep
advancing while the dropped matches are found again.

An optional egg-style **backoff scheduler** (``RunnerConfig.backoff``,
default off) complements sampling: a rule whose match count in a single
iteration exceeds ``backoff_match_limit`` is banned — not searched, nothing
applied — for ``backoff_ban_length`` iterations, with both thresholds
doubling on repeat offences.  Because a banned rule's touch-log cursor is
frozen, it re-discovers everything it missed when the ban expires, and a
quiet iteration is not reported as saturation while bans are pending.

The runner stops when the e-graph stops changing (saturation), or when the
iteration, e-node or time budget is exhausted.
"""

from __future__ import annotations

import enum
import heapq
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Match, Rule

# Saturation metrics: no-ops until `repro.obs.enable()`; labelled by stop
# reason so time-limit aborts are visible next to clean saturations.
_RUNS = {
    reason: obs.registry().counter(
        "saturation_runs_total",
        "Saturation runs by stop reason",
        stop_reason=reason,
    )
    for reason in ("saturated", "iteration_limit", "node_limit", "time_limit")
}
_ITERATIONS = obs.registry().counter(
    "saturation_iterations_total", "Saturation iterations across all runs"
)
_BANS = obs.registry().counter(
    "saturation_bans_total", "Backoff-scheduler rule bans across all runs"
)
_SECONDS = obs.registry().histogram(
    "saturation_seconds", "Wall-clock seconds per saturation run"
)


class StopReason(enum.Enum):
    """Why a saturation run ended."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class RunnerConfig:
    """Saturation budget and scheduling strategy."""

    iter_limit: int = 12
    node_limit: int = 10_000
    time_limit: float = 5.0
    strategy: str = "sampling"
    sample_limit: int = 25
    seed: int = 0
    #: search only classes touched since each rule's last search (full scans
    #: are still used for the first iteration and for non-incremental rules);
    #: disable to benchmark against full re-searching every iteration
    incremental: bool = True
    #: egg-style backoff scheduling (off by default): when a rule's match
    #: count in one iteration exceeds ``backoff_match_limit`` the rule is
    #: *banned* — none of its matches are applied and it is not searched —
    #: for ``backoff_ban_length`` iterations.  Both the limit and the ban
    #: length double on each repeat offence, so an expansive rule (AC
    #: regrouping) eventually gets its matches back once the rest of the
    #: rule set has caught up, instead of flooding every iteration.
    backoff: bool = False
    #: match-count threshold that triggers the first ban
    backoff_match_limit: int = 400
    #: length (in iterations) of the first ban
    backoff_ban_length: int = 2

    def __post_init__(self) -> None:
        if self.strategy not in ("sampling", "dfs"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.backoff and (self.backoff_match_limit < 1 or self.backoff_ban_length < 1):
            raise ValueError("backoff_match_limit and backoff_ban_length must be >= 1")


@dataclass
class IterationStats:
    """Per-iteration statistics (e-graph growth, matches applied)."""

    iteration: int
    matches_found: int
    matches_applied: int
    enodes: int
    classes: int
    elapsed: float


@dataclass
class RunReport:
    """Result of a saturation run."""

    stop_reason: StopReason
    iterations: List[IterationStats] = field(default_factory=list)
    total_time: float = 0.0
    #: number of backoff ban events (0 unless ``RunnerConfig.backoff`` is on)
    bans: int = 0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def saturated(self) -> bool:
        return self.stop_reason is StopReason.SATURATED

    @property
    def final_enodes(self) -> int:
        return self.iterations[-1].enodes if self.iterations else 0

    @property
    def final_classes(self) -> int:
        return self.iterations[-1].classes if self.iterations else 0


class Runner:
    """Drives equality saturation of an e-graph with a rule set."""

    def __init__(self, config: Optional[RunnerConfig] = None) -> None:
        self.config = config or RunnerConfig()

    def run(self, egraph: EGraph, rules: Sequence[Rule]) -> RunReport:
        """Saturate ``egraph`` with ``rules`` under the configured budget."""
        report = self._run(egraph, rules)
        _RUNS[report.stop_reason.value].inc()
        _ITERATIONS.inc(report.num_iterations)
        if report.bans:
            _BANS.inc(report.bans)
        _SECONDS.observe(report.total_time)
        return report

    def _run(self, egraph: EGraph, rules: Sequence[Rule]) -> RunReport:
        config = self.config
        report = RunReport(stop_reason=StopReason.ITERATION_LIMIT)
        start = time.perf_counter()
        #: per-rule position in the e-graph touch log as of its last search
        cursors: Dict[int, int] = {}
        #: per-rule root classes of matches dropped by sampling, re-searched
        #: next iteration even though the cursor has moved past them
        pending_roots: Dict[int, set] = {}
        #: backoff state: first iteration a banned rule may search again, and
        #: how many times each rule has been banned (doubles its thresholds)
        banned_until: Dict[int, int] = {}
        ban_counts: Dict[int, int] = {}

        egraph.rebuild()
        for iteration in range(config.iter_limit):
            iter_start = time.perf_counter()
            matches_found = 0
            matches_applied = 0
            bans_this_iteration = False

            enodes_before = egraph.num_enodes()
            merges_before = egraph.merges_performed

            # -- search phase: every rule sees the same clean snapshot -------
            searched = []
            for rule in rules:
                if time.perf_counter() - start > config.time_limit:
                    # Record the in-flight iteration before bailing: the
                    # e-graph state (and any matches already counted) must
                    # show up in the report, or final_enodes/final_classes
                    # read 0 for a run that did grow the graph.
                    self._record(
                        report, iteration, matches_found, matches_applied, egraph, iter_start
                    )
                    report.stop_reason = StopReason.TIME_LIMIT
                    report.total_time = time.perf_counter() - start
                    return report
                if config.backoff and iteration < banned_until.get(id(rule), 0):
                    # Banned: neither searched nor applied; its touch-log
                    # cursor stays put, so on release it sees every class
                    # that changed while it sat out.
                    bans_this_iteration = True
                    continue
                dirty = None
                position = egraph.touch_position()
                if config.incremental and rule.incremental:
                    cursor = cursors.get(id(rule))
                    if cursor is not None:
                        dirty = egraph.touched_since(cursor)
                        carried = pending_roots.get(id(rule))
                        if carried:
                            dirty = dirty | frozenset(egraph.find(c) for c in carried)
                matches = rule.search(egraph, dirty)
                if config.backoff:
                    offences = ban_counts.get(id(rule), 0)
                    if len(matches) > (config.backoff_match_limit << offences):
                        # Match count exploded: discard this search wholesale
                        # and ban the rule, doubling limit and ban length per
                        # repeat offence (egg's BackoffScheduler).  The
                        # cursor is not advanced, so nothing is lost — the
                        # matches are re-found when the ban expires; the
                        # discarded search does not count into matches_found
                        # (the stat tracks matches eligible for application).
                        ban_counts[id(rule)] = offences + 1
                        banned_until[id(rule)] = (
                            iteration + 1 + (config.backoff_ban_length << offences)
                        )
                        report.bans += 1
                        bans_this_iteration = True
                        continue
                matches_found += len(matches)
                searched.append((rule, matches, position))

            # -- apply phase: batched, with one rebuild at the end -----------
            over_limit = False
            for rule, matches, position in searched:
                if time.perf_counter() - start > config.time_limit:
                    egraph.rebuild()
                    # Same as the search-phase exit: the partial iteration's
                    # growth is real and must be recorded before returning.
                    self._record(
                        report, iteration, matches_found, matches_applied, egraph, iter_start
                    )
                    report.stop_reason = StopReason.TIME_LIMIT
                    report.total_time = time.perf_counter() - start
                    return report
                scheduled = self._schedule(rule, matches, iteration)
                for match in scheduled:
                    if match.apply(egraph):
                        matches_applied += 1
                # Dropped matches must be re-found: advance the cursor and
                # carry just their root classes forward, so a persistently
                # oversampled rule keeps a bounded dirty set instead of
                # replaying an ever-growing touch-log window.
                if len(scheduled) == len(matches):
                    cursors[id(rule)] = position
                    pending_roots.pop(id(rule), None)
                else:
                    kept = {id(match) for match in scheduled}
                    dropped_roots = {
                        match.root for match in matches if id(match) not in kept
                    }
                    if None not in dropped_roots:
                        cursors[id(rule)] = position
                        pending_roots[id(rule)] = dropped_roots
                    # else: a match without a root — leave the cursor behind
                    # so the whole window is replayed (conservative fallback)
                if egraph.num_enodes() > config.node_limit:
                    # The live counter can over-approximate before a rebuild;
                    # rebuild and re-check before concluding.
                    egraph.rebuild()
                    if egraph.num_enodes() > config.node_limit:
                        over_limit = True
                        break
            egraph.rebuild()

            if over_limit or egraph.num_enodes() > config.node_limit:
                self._record(report, iteration, matches_found, matches_applied, egraph, iter_start)
                report.stop_reason = StopReason.NODE_LIMIT
                report.total_time = time.perf_counter() - start
                return report

            changed = (
                egraph.num_enodes() != enodes_before
                or egraph.merges_performed != merges_before
            )
            self._record(report, iteration, matches_found, matches_applied, egraph, iter_start)

            # A quiet iteration only proves saturation if every rule actually
            # got to search and apply; banned rules still hold back matches.
            if not changed and not bans_this_iteration:
                report.stop_reason = StopReason.SATURATED
                break
            if time.perf_counter() - start > config.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
        report.total_time = time.perf_counter() - start
        return report

    def _schedule(self, rule: Rule, matches: List[Match], iteration: int) -> List[Match]:
        """Pick which matches to apply this iteration, in a canonical order.

        Scheduling is a pure function of the match *keys*, never of the
        enumeration order, so indexed, incremental and full-scan searches
        lead to identical saturation runs.  When sampling has to drop
        matches, selection uses a seeded CRC priority per match key and
        keeps the ``sample_limit`` smallest via ``heapq.nsmallest``
        (O(n log k)) — the former sort-everything-then-sample pass is gone.
        When nothing is dropped, matches are applied in key order (the list
        is either small — at most ``sample_limit`` — or the depth-first
        strategy is already paying to apply every match).
        """
        limit = self.config.sample_limit
        if self.config.strategy == "dfs" or len(matches) <= limit:
            return sorted(matches, key=lambda match: match.key)
        salt = zlib.crc32(f"{self.config.seed}:{iteration}:{rule.name}".encode())

        def priority(match: Match):
            encoded = repr(match.key).encode()
            return (zlib.crc32(encoded, salt), encoded)

        return heapq.nsmallest(limit, matches, key=priority)

    @staticmethod
    def _record(
        report: RunReport,
        iteration: int,
        found: int,
        applied: int,
        egraph: EGraph,
        iter_start: float,
    ) -> None:
        report.iterations.append(
            IterationStats(
                iteration=iteration,
                matches_found=found,
                matches_applied=applied,
                enodes=egraph.num_enodes(),
                classes=egraph.num_classes(),
                elapsed=time.perf_counter() - iter_start,
            )
        )
