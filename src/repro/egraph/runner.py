"""The saturation loop (Fig. 8 of the paper) with match scheduling.

Two scheduling strategies are implemented, matching Sec. 3.1 and the
compile-time experiments of Sec. 4.3:

* **depth-first** (``"dfs"``): every match of every rule is applied on every
  iteration.  Complete but explodes on expansive rules (associativity /
  commutativity regrouping), which is why the paper's GLM and SVM runs time
  out under this strategy.
* **sampling** (``"sampling"``): each rule applies at most ``sample_limit``
  matches per iteration, drawn with a seeded RNG.  This keeps every rule
  participating equally and prevents a single expansive rule from exhausting
  memory; in practice it still converges whenever full saturation would.

The runner stops when the e-graph stops changing (saturation), or when the
iteration, e-node or time budget is exhausted.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.egraph.graph import EGraph
from repro.egraph.rewrite import Match, Rule


class StopReason(enum.Enum):
    """Why a saturation run ended."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class RunnerConfig:
    """Saturation budget and scheduling strategy."""

    iter_limit: int = 12
    node_limit: int = 10_000
    time_limit: float = 5.0
    strategy: str = "sampling"
    sample_limit: int = 25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in ("sampling", "dfs"):
            raise ValueError(f"unknown strategy {self.strategy!r}")


@dataclass
class IterationStats:
    """Per-iteration statistics (e-graph growth, matches applied)."""

    iteration: int
    matches_found: int
    matches_applied: int
    enodes: int
    classes: int
    elapsed: float


@dataclass
class RunReport:
    """Result of a saturation run."""

    stop_reason: StopReason
    iterations: List[IterationStats] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def saturated(self) -> bool:
        return self.stop_reason is StopReason.SATURATED

    @property
    def final_enodes(self) -> int:
        return self.iterations[-1].enodes if self.iterations else 0

    @property
    def final_classes(self) -> int:
        return self.iterations[-1].classes if self.iterations else 0


class Runner:
    """Drives equality saturation of an e-graph with a rule set."""

    def __init__(self, config: Optional[RunnerConfig] = None) -> None:
        self.config = config or RunnerConfig()

    def run(self, egraph: EGraph, rules: Sequence[Rule]) -> RunReport:
        """Saturate ``egraph`` with ``rules`` under the configured budget."""
        config = self.config
        rng = random.Random(config.seed)
        report = RunReport(stop_reason=StopReason.ITERATION_LIMIT)
        start = time.perf_counter()

        egraph.rebuild()
        for iteration in range(config.iter_limit):
            iter_start = time.perf_counter()
            matches_found = 0
            matches_applied = 0
            changed = False

            enodes_before = egraph.num_enodes()
            merges_before = egraph.merges_performed

            for rule in rules:
                if time.perf_counter() - start > config.time_limit:
                    report.stop_reason = StopReason.TIME_LIMIT
                    report.total_time = time.perf_counter() - start
                    return report
                matches = rule.search(egraph)
                matches_found += len(matches)
                matches = self._schedule(rule, matches, rng)
                for match in matches:
                    if match.apply(egraph):
                        matches_applied += 1
                egraph.rebuild()
                if egraph.num_enodes() > config.node_limit:
                    self._record(report, iteration, matches_found, matches_applied, egraph, iter_start)
                    report.stop_reason = StopReason.NODE_LIMIT
                    report.total_time = time.perf_counter() - start
                    return report

            changed = (
                egraph.num_enodes() != enodes_before
                or egraph.merges_performed != merges_before
            )
            self._record(report, iteration, matches_found, matches_applied, egraph, iter_start)

            if not changed:
                report.stop_reason = StopReason.SATURATED
                break
            if time.perf_counter() - start > config.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
        report.total_time = time.perf_counter() - start
        return report

    def _schedule(self, rule: Rule, matches: List[Match], rng: random.Random) -> List[Match]:
        """Pick which matches to apply this iteration."""
        if self.config.strategy == "dfs":
            return matches
        limit = self.config.sample_limit
        if len(matches) <= limit:
            return matches
        matches = sorted(matches, key=lambda m: m.key)
        return rng.sample(matches, limit)

    @staticmethod
    def _record(
        report: RunReport,
        iteration: int,
        found: int,
        applied: int,
        egraph: EGraph,
        iter_start: float,
    ) -> None:
        report.iterations.append(
            IterationStats(
                iteration=iteration,
                matches_found=found,
                matches_applied=applied,
                enodes=egraph.num_enodes(),
                classes=egraph.num_classes(),
                elapsed=time.perf_counter() - iter_start,
            )
        )
