"""Rewrite-rule protocol for equality saturation.

A rule is a *searcher* that scans the e-graph for places it applies and an
*applier* that adds the equivalent expression and merges the two classes.
Because the R_EQ rules need non-syntactic guards (schema conditions, subset
enumeration over n-ary joins), rules here are plain Python objects rather
than a pattern language: ``search`` returns a list of :class:`Match`
closures, and the runner decides which of them to apply (all of them under
the depth-first strategy, a sample under the sampling strategy).

Searching is *incremental*: ``search`` takes an optional ``dirty`` set of
canonical e-class ids that changed since the rule's previous search (as
reported by :meth:`repro.egraph.graph.EGraph.touched_since`).  A rule whose
patterns span a root node plus its immediate children only needs to revisit
matches whose root class or child classes are dirty; passing ``dirty=None``
requests a full search.  Rules that cannot bound their matches to a changed
neighbourhood set ``incremental = False`` and are always searched in full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.egraph.graph import EGraph


@dataclass
class Match:
    """One place a rule applies.

    ``apply`` performs the insertion/merge; it must tolerate being run after
    other matches have already changed the graph (class ids are always passed
    through ``egraph.find`` before use).  It returns ``True`` if it changed
    the e-graph (added an e-node or merged classes).
    """

    rule_name: str
    apply: Callable[["EGraph"], bool]
    #: unique-per-search sort key making match selection deterministic
    key: tuple = field(default_factory=tuple)
    #: canonical id of the e-class the match is rooted at; lets the runner
    #: re-enqueue just this class for an incremental rule when the match is
    #: dropped by sampling (left ``None``, the runner conservatively replays
    #: the rule's whole dirty window instead)
    root: Optional[int] = None


class Rule:
    """Base class for rewrite rules."""

    #: human-readable rule name (shown in reports and tests)
    name: str = "rule"

    #: expansive rules (AC regrouping, distributivity) are the ones the
    #: sampling strategy throttles hardest; marking them lets the runner and
    #: the benchmarks distinguish them.
    expansive: bool = False

    #: whether ``search`` honours a ``dirty`` class set; rules that need a
    #: global view of the graph set this to ``False`` and always full-scan.
    incremental: bool = True

    #: whether ``search`` reads the e-graph's operator index (the default)
    #: or the legacy full scan (kept as the e-matching benchmark baseline).
    use_index: bool = True

    def search(self, egraph: "EGraph", dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        """Find matches; ``dirty`` restricts the search to changed classes."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.name}>"


class FunctionRule(Rule):
    """A rule defined by a plain search function.

    The searcher receives ``(egraph)`` and is treated as non-incremental
    unless ``incremental=True`` is passed, in which case it must accept
    ``(egraph, dirty)``.
    """

    def __init__(
        self,
        name: str,
        searcher: Callable[..., List[Match]],
        expansive: bool = False,
        incremental: bool = False,
    ) -> None:
        self.name = name
        self._searcher = searcher
        self.expansive = expansive
        self.incremental = incremental

    def search(self, egraph: "EGraph", dirty: Optional[FrozenSet[int]] = None) -> List[Match]:
        if self.incremental:
            return self._searcher(egraph, dirty)
        return self._searcher(egraph)
