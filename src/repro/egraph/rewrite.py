"""Rewrite-rule protocol for equality saturation.

A rule is a *searcher* that scans the e-graph for places it applies and an
*applier* that adds the equivalent expression and merges the two classes.
Because the R_EQ rules need non-syntactic guards (schema conditions, subset
enumeration over n-ary joins), rules here are plain Python objects rather
than a pattern language: ``search`` returns a list of :class:`Match`
closures, and the runner decides which of them to apply (all of them under
the depth-first strategy, a sample under the sampling strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.egraph.graph import EGraph


@dataclass
class Match:
    """One place a rule applies.

    ``apply`` performs the insertion/merge; it must tolerate being run after
    other matches have already changed the graph (class ids are always passed
    through ``egraph.find`` before use).  It returns ``True`` if it changed
    the e-graph (added an e-node or merged classes).
    """

    rule_name: str
    apply: Callable[["EGraph"], bool]
    #: sort key making match order deterministic across runs
    key: tuple = field(default_factory=tuple)


class Rule:
    """Base class for rewrite rules."""

    #: human-readable rule name (shown in reports and tests)
    name: str = "rule"

    #: expansive rules (AC regrouping, distributivity) are the ones the
    #: sampling strategy throttles hardest; marking them lets the runner and
    #: the benchmarks distinguish them.
    expansive: bool = False

    def search(self, egraph: "EGraph") -> List[Match]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.name}>"


class FunctionRule(Rule):
    """A rule defined by a plain search function."""

    def __init__(
        self,
        name: str,
        searcher: Callable[["EGraph"], List[Match]],
        expansive: bool = False,
    ) -> None:
        self.name = name
        self._searcher = searcher
        self.expansive = expansive

    def search(self, egraph: "EGraph") -> List[Match]:
        return self._searcher(egraph)
