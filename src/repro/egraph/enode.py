"""E-nodes: hash-consed operators whose children are e-class ids.

The operator alphabet matches the RA IR (plus nothing else — LA never enters
the e-graph; translation happens before and after saturation, Sec. 3.5):

=========  ====================================  ==========================
op         payload                               children
=========  ====================================  ==========================
``var``    ``(name, attrs)``                     none
``lit``    ``value`` (float)                     none
``*``      ``None``                              n e-class ids (n >= 2)
``+``      ``None``                              n e-class ids (n >= 2)
``sum``    ``frozenset[Attr]``                   one e-class id
=========  ====================================  ==========================

``*`` and ``+`` are associative and commutative (rules 6/7 of R_EQ), so
their children are stored as a sorted tuple; two joins of the same e-classes
in different orders are the *same* e-node.  This builds AC into congruence
instead of requiring explicit commutativity rewrites, which is how the
flattened n-ary representation in the paper behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Tuple

OP_VAR = "var"
OP_LIT = "lit"
OP_JOIN = "*"
OP_ADD = "+"
OP_SUM = "sum"

#: Operators whose children are unordered (associative & commutative).
AC_OPS = frozenset({OP_JOIN, OP_ADD})

_VALID_OPS = frozenset({OP_VAR, OP_LIT, OP_JOIN, OP_ADD, OP_SUM})


@dataclass(frozen=True)
class ENode:
    """An operator applied to e-class ids."""

    op: str
    payload: Hashable
    children: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise ValueError(f"unknown e-node operator {self.op!r}")

    def canonicalize(self, find) -> "ENode":
        """Rewrite children through ``find`` and restore canonical ordering."""
        children = tuple(find(c) for c in self.children)
        if self.op in AC_OPS:
            children = tuple(sorted(children))
        if children == self.children:
            return self
        return ENode(self.op, self.payload, children)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @cached_property
    def sort_key(self) -> Tuple:
        """Cheap structural ordering key: (op, payload key, children).

        Deterministic across processes (no object ids, no hash randomisation)
        and far cheaper than ``repr``-based ordering, which used to dominate
        e-matching profiles.
        """
        if self.op == OP_VAR:
            name, attrs = self.payload
            payload_key: Tuple = (name, tuple(_attr_key(a) for a in attrs))
        elif self.op == OP_LIT:
            payload_key = (self.payload,)
        elif self.op == OP_SUM:
            payload_key = tuple(sorted(_attr_key(a) for a in self.payload))
        else:
            payload_key = ()
        return (self.op, payload_key, self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == OP_VAR:
            name, attrs = self.payload
            return f"var:{name}({','.join(a.name for a in attrs)})"
        if self.op == OP_LIT:
            return f"lit:{self.payload}"
        if self.op == OP_SUM:
            names = ",".join(sorted(a.name for a in self.payload))
            return f"sum_{{{names}}}({self.children[0]})"
        return f"{self.op}({','.join(map(str, self.children))})"


def _attr_key(attr) -> Tuple:
    """Total-order key for an attribute (sizes may be ``None``)."""
    return (attr.name, attr.size is None, attr.size or 0)
