"""Cross-size validity guards for compiled plan templates.

SPORES' optimized plans are *structural*: the rewrites equality saturation
discovers are valid for any dimension sizes, because they are proved from
the sum-product semantics, not from the concrete 10,000 in ``Dim("m",
10_000)``.  What is **not** size-independent is the *choice* between
equivalent plans — the extractor picked the winner under the cost model at
the compile-time sizes, and a different point of the size ladder could in
principle prefer a different plan.

A :class:`TemplateGuard` records the region where reusing the compiled
plan is known to be a good idea:

* a per-dimension-slot **size range** ``[lo, hi]`` inside which the
  compiled plan's estimated cost still dominates the original
  expression's (probed geometrically around the compile-time pivot, per
  dim plus the all-low/all-high corners);
* the per-input **sparsity bands** the plan was compiled under (the bands
  already salt the template digest; the guard re-checks them so a guard
  is self-contained and auditable);
* an ``exact`` fallback that admits nothing — used whenever cross-size
  reuse cannot be shown valid.

The guard is conservative in two distinct ways:

* **Semantics.**  One rewrite family can bake a dimension size into the
  plan as a *value*: ``Σ_i A = |i| * A`` when ``i`` does not occur in
  ``A`` (rule 5).  Re-pinning sizes cannot fix a literal ``10_000.0``, so
  :func:`derive_guard` scans the physical plan for any constant equal to a
  product of compile-time dim sizes and falls back to ``exact`` when it
  finds one (a user constant colliding with such a product is also caught
  — false positives only cost sharing, never correctness).  Dims with
  tiny pivots (< 4) are pinned to their exact size for the same reason: a
  degenerate axis eliminated at size 1 leaves no trace to re-pin.
* **Plan quality.**  Inside the admitted region the template's cost
  merely *dominates the original's* — the paper's own acceptance bar for
  a rewrite (``keep_only_improvements``) — which is not the same as being
  the plan a fresh saturation would pick.  A guard miss therefore falls
  back to a fresh specialization; a guard hit trades at most a sliver of
  plan quality for skipping saturation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.canonical.fingerprint import ExprSignature, rebind_dim_sizes, sparsity_band
from repro.cost.la_cost import LACostModel
from repro.lang import dag
from repro.lang import expr as la
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.pipeline import PlanArtifact
from repro.runtime.fusion import fuse_operators

#: widest factor the dominance probe explores around the pivot, per dim
MAX_RANGE_FACTOR = 16

#: dims with a pivot below this are pinned to their exact size (degenerate
#: axes leave no re-pinnable trace when a rewrite eliminates them)
MIN_SCALABLE_SIZE = 4

#: sizes the guard treats as "unbounded" when no rewrite happened at all
MAX_DIM_SIZE = 2**31

#: multiplicative slack for the cost-dominance comparison (absorbs float
#: noise in the analytic model, never a real regression)
COST_SLACK = 1.0 + 1e-9


class GuardError(ValueError):
    """Raised when a guard payload cannot be decoded."""


@dataclass(frozen=True)
class DimGuard:
    """Admitted size range of one canonical dimension slot."""

    #: compile-time dimension name (diagnostics only; slots are positional)
    name: str
    #: the size the template was actually compiled at
    pivot: int
    lo: int
    hi: int

    def admits(self, size: int) -> bool:
        return self.lo <= size <= self.hi

    def describe(self) -> str:
        return f"{self.name}: [{self.lo}, {self.hi}] (pivot {self.pivot})"

    def to_json(self) -> list:
        return [self.name, self.pivot, self.lo, self.hi]

    @staticmethod
    def from_json(payload: Any) -> "DimGuard":
        if not isinstance(payload, (list, tuple)) or len(payload) != 4:
            raise GuardError(f"malformed dim guard payload: {payload!r}")
        name, pivot, lo, hi = payload
        try:
            return DimGuard(str(name), int(pivot), int(lo), int(hi))
        except (TypeError, ValueError) as error:
            raise GuardError(f"malformed dim guard payload: {error}") from error


@dataclass(frozen=True)
class TemplateGuard:
    """The region of (sizes, sparsity bands) a plan template may serve."""

    dims: Tuple[DimGuard, ...] = ()
    #: per input slot: the sparsity band the plan was compiled under
    bands: Tuple[str, ...] = ()
    #: admit nothing beyond the exact compile-time instance
    exact: bool = True

    def admits(self, signature: ExprSignature) -> bool:
        """Whether an instance signature falls inside the guarded region.

        Exact guards admit nothing here — the exact instance is already
        served by the instance-digest cache tier, so reaching the guard
        scan at all means the sizes differ.
        """
        if self.exact:
            return False
        if len(signature.dim_sizes) != len(self.dims):
            return False
        if signature.bands != self.bands:
            return False
        return all(
            size is not None and guard.admits(size)
            for guard, size in zip(self.dims, signature.dim_sizes)
        )

    def describe(self) -> str:
        if self.exact:
            return "exact-match only"
        dims = "; ".join(guard.describe() for guard in self.dims) or "no dims"
        return f"{dims} | bands {list(self.bands)}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "exact": self.exact,
            "dims": [guard.to_json() for guard in self.dims],
            "bands": list(self.bands),
        }

    @staticmethod
    def from_json(payload: Any) -> "TemplateGuard":
        if not isinstance(payload, dict):
            raise GuardError(f"guard payload must be an object, got {payload!r}")
        dims_payload = payload.get("dims", [])
        bands_payload = payload.get("bands", [])
        if not isinstance(dims_payload, list) or not isinstance(bands_payload, list):
            raise GuardError("guard payload needs 'dims' and 'bands' lists")
        return TemplateGuard(
            dims=tuple(DimGuard.from_json(dim) for dim in dims_payload),
            bands=tuple(str(band) for band in bands_payload),
            exact=bool(payload.get("exact", True)),
        )


def exact_guard(signature: ExprSignature) -> TemplateGuard:
    """The conservative fallback: serve this exact instance only."""
    return TemplateGuard(dims=(), bands=signature.bands, exact=True)


def derive_guard(
    signature: ExprSignature,
    artifact: PlanArtifact,
    config: Optional[OptimizerConfig] = None,
    cost_model: Optional[LACostModel] = None,
) -> TemplateGuard:
    """Derive the cross-size guard of a freshly compiled plan.

    The admitted region is grown geometrically around the compile-time
    pivot sizes: each dim's range doubles outward while the optimized
    plan's estimated cost keeps dominating the original expression's at
    the probe point (others held at pivot), then the all-low and all-high
    corners are verified; if a corner fails, the probe factor shrinks and
    the scan reruns.  Falls back to :func:`exact_guard` when any dim is
    symbolic, when dominance fails at the pivot itself, or when the
    physical plan embeds a size-derived constant (see the module
    docstring).
    """
    config = config or OptimizerConfig()
    sizes = signature.dim_sizes
    if not sizes or any(size is None for size in sizes):
        return exact_guard(signature)

    # No rewrite happened: the plan *is* the original expression (operator
    # fusion included — fusion is structural), so it is valid and dominant
    # at every size.  Note Dim equality ignores sizes, so this structural
    # comparison is exactly "same plan shape".
    if artifact.optimized == artifact.original:
        dims = tuple(
            DimGuard(name, pivot, 1, MAX_DIM_SIZE)
            if pivot >= MIN_SCALABLE_SIZE
            else DimGuard(name, pivot, pivot, pivot)
            for name, pivot in zip(signature.dim_names, sizes)
        )
        return TemplateGuard(dims=dims, bands=signature.bands, exact=False)

    if _size_entangled_constants(artifact.fused, sizes):
        return exact_guard(signature)

    # Every sized dim of the physical plan must be one the signature can
    # re-pin.  A lift can introduce fresh dim names (renamed-apart bound
    # indices behind a ones tensor); their sizes are frozen copies of the
    # pivot's, so a template carrying one cannot be resized safely.
    known = set(signature.dim_names)
    for node in dag.postorder(artifact.fused):
        if isinstance(node, la.Var):
            shape = node.var_shape
        elif isinstance(node, la.FilledMatrix):
            shape = node.fill_shape
        else:
            continue
        for dim in (shape.rows, shape.cols):
            if not dim.is_unit and dim.name not in known:
                return exact_guard(signature)

    cost_model = cost_model or LACostModel()
    original = (
        fuse_operators(artifact.original) if config.fusion_aware else artifact.original
    )
    candidate = artifact.fused if config.fusion_aware else artifact.optimized
    names = signature.dim_names
    pivot_assignment = dict(zip(names, sizes))

    def dominated(assignment: Dict[str, int]) -> bool:
        original_cost = cost_model.total(rebind_dim_sizes(original, assignment))
        candidate_cost = cost_model.total(rebind_dim_sizes(candidate, assignment))
        return candidate_cost <= original_cost * COST_SLACK

    if not dominated(pivot_assignment):
        return exact_guard(signature)

    for cap in (MAX_RANGE_FACTOR, 4, 2):
        ranges = [
            _probe_dim(name, pivot, pivot_assignment, dominated, cap)
            for name, pivot in zip(names, sizes)
        ]
        low_corner = {name: lo for name, (lo, _) in zip(names, ranges)}
        high_corner = {name: hi for name, (_, hi) in zip(names, ranges)}
        if dominated(low_corner) and dominated(high_corner):
            dims = tuple(
                DimGuard(name, pivot, lo, hi)
                for name, pivot, (lo, hi) in zip(names, sizes, ranges)
            )
            return TemplateGuard(dims=dims, bands=signature.bands, exact=False)
    return exact_guard(signature)


def _probe_dim(
    name: str,
    pivot: int,
    pivot_assignment: Dict[str, int],
    dominated,
    cap: int,
) -> Tuple[int, int]:
    """Geometric outward scan of one dim's admitted range (others at pivot)."""
    if pivot < MIN_SCALABLE_SIZE:
        return pivot, pivot
    lo = hi = pivot
    factor = 2
    while factor <= cap:
        probe = max(1, pivot // factor)
        if not dominated({**pivot_assignment, name: probe}):
            break
        lo = probe
        factor *= 2
    factor = 2
    while factor <= cap:
        probe = pivot * factor
        if not dominated({**pivot_assignment, name: probe}):
            break
        hi = probe
        factor *= 2
    return lo, hi


def _size_entangled_constants(
    plan: la.LAExpr, sizes: Sequence[int]
) -> List[float]:
    """Constants in ``plan`` equal to a product of compile-time dim sizes.

    Catches plans where a rewrite folded a dimension cardinality into a
    scalar (``Σ_i A = |i| * A`` and anything constant folding derived from
    it): such a plan is correct only at the pivot sizes, so its guard must
    stay exact.  Products of up to three sizes are considered; sizes below
    :data:`MIN_SCALABLE_SIZE` are skipped because those dims are pinned to
    their pivot anyway (and would flag harmless constants like ``1.0``).
    """
    factors = sorted({float(size) for size in sizes if size >= MIN_SCALABLE_SIZE})
    products: Set[float] = set(factors)
    for a in factors:
        for b in factors:
            products.add(a * b)
            for c in factors:
                products.add(a * b * c)
    if not products:
        return []
    flagged: List[float] = []
    for node in dag.postorder(plan):
        if isinstance(node, (la.Literal, la.FilledMatrix)):
            value = abs(float(node.value))
        else:
            continue
        if value in products:
            flagged.append(value)
    return flagged


__all__ = [
    "DimGuard",
    "TemplateGuard",
    "GuardError",
    "derive_guard",
    "exact_guard",
    "MAX_RANGE_FACTOR",
]
