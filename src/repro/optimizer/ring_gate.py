"""Ring-dependence gating for the rewrite rule set.

PR 8's differential audit classified all 100 rewrite rules and catalog
patterns over four semirings and committed the result as
``analysis/rule_matrix.json``.  This module is the *consumer* of that
matrix: a committed gating table (one entry per rule key, carrying the
audited ring classification and capability needs) plus the predicates the
optimizer uses to exclude rules a target ring cannot justify.

The table below is **derived from the committed matrix** — it must equal
``derive_gating_table(json.load(open("analysis/rule_matrix.json")))``
entry for entry.  ``python -m repro.analysis`` re-derives the table from
the freshly measured matrix on every run and reports a finding when this
file has drifted, so the gate cannot silently diverge from the audit.

Gating semantics, per rule key:

* ``real-only`` rules run only under the real ring (the audit shows all 13
  of them need subtraction — negation/minus patterns);
* ``any-semiring`` rules run under every ring **whose capability flags
  satisfy the rule's declared needs**: ``subtraction`` requires
  ``ring.has_subtraction``, ``division``/``multiplicative-inverse``
  requires ``ring.has_division``, ``idempotence`` requires
  ``ring.idempotent``; the remaining needs (associativity, commutativity,
  distributivity, annihilation, counting-literals) hold in every
  commutative semiring under the counting-literal interpretation and never
  restrict;
* unknown keys — a rule added without re-running the audit — are
  conservatively excluded under every non-real ring.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.runtime.semiring import Semiring

#: rule key -> (audited ring classification, declared capability needs);
#: derived from analysis/rule_matrix.json — do not edit by hand, re-run
#: ``python -m repro.analysis --write-matrix`` and regenerate on drift.
GATING_TABLE: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    'catalog:BinaryMatrixScalarOperation[0]': ('any-semiring', ()),
    'catalog:BinaryMatrixScalarOperation[1]': ('any-semiring', ()),
    'catalog:BinaryMatrixScalarOperation[2]': ('any-semiring', ()),
    'catalog:BinaryToUnaryOperation[0]': ('any-semiring', ()),
    'catalog:BinaryToUnaryOperation[1]': ('any-semiring', ('counting-literals',)),
    'catalog:BinaryToUnaryOperation[2]': ('any-semiring', ()),
    'catalog:BushyBinaryOperation[0]': ('any-semiring', ('associativity',)),
    'catalog:BushyBinaryOperation[1]': ('any-semiring', ('associativity',)),
    'catalog:BushyBinaryOperation[2]': ('any-semiring', ('associativity',)),
    'catalog:ColSumsMVMult[0]': ('any-semiring', ()),
    'catalog:ColwiseAgg[0]': ('any-semiring', ()),
    'catalog:ColwiseAgg[1]': ('any-semiring', ()),
    'catalog:ColwiseAgg[2]': ('any-semiring', ()),
    'catalog:DistributiveBinaryOperation[0]': ('real-only', ('subtraction',)),
    'catalog:DistributiveBinaryOperation[1]': ('any-semiring', ('distributivity',)),
    'catalog:DistributiveBinaryOperation[2]': ('real-only', ('subtraction',)),
    'catalog:DistributiveBinaryOperation[3]': ('any-semiring', ('distributivity',)),
    'catalog:DotProductSum[0]': ('any-semiring', ()),
    'catalog:DotProductSum[1]': ('any-semiring', ()),
    'catalog:EmptyAgg[0]': ('any-semiring', ()),
    'catalog:EmptyAgg[1]': ('any-semiring', ()),
    'catalog:EmptyAgg[2]': ('any-semiring', ('annihilation',)),
    'catalog:EmptyBinaryOperation[0]': ('any-semiring', ()),
    'catalog:EmptyBinaryOperation[1]': ('any-semiring', ()),
    'catalog:EmptyBinaryOperation[2]': ('real-only', ('subtraction',)),
    'catalog:EmptyMMult[0]': ('any-semiring', ()),
    'catalog:EmptyReorgOp[0]': ('any-semiring', ()),
    'catalog:EmptyReorgOp[1]': ('real-only', ('subtraction',)),
    'catalog:EmptyReorgOp[2]': ('any-semiring', ()),
    'catalog:EmptyReorgOp[3]': ('any-semiring', ()),
    'catalog:EmptyReorgOp[4]': ('any-semiring', ('counting-literals',)),
    'catalog:IdentityRepMatrixMult[0]': ('any-semiring', ()),
    'catalog:MatrixMultScalarAdd[0]': ('any-semiring', ('commutativity',)),
    'catalog:MatrixMultScalarAdd[1]': ('real-only', ('subtraction',)),
    'catalog:RowSumsMVMult[0]': ('any-semiring', ()),
    'catalog:RowwiseAgg[0]': ('any-semiring', ()),
    'catalog:RowwiseAgg[1]': ('any-semiring', ()),
    'catalog:RowwiseAgg[2]': ('any-semiring', ()),
    'catalog:ScalarMVBinaryOperation[0]': ('any-semiring', ()),
    'catalog:ScalarMatrixMult[0]': ('any-semiring', ()),
    'catalog:ScalarMatrixMult[1]': ('any-semiring', ()),
    'catalog:SumMatrixMult[0]': ('any-semiring', ('commutativity', 'distributivity')),
    'catalog:SumMatrixMult[1]': ('any-semiring', ('commutativity', 'distributivity')),
    'catalog:SumMatrixMult[2]': ('any-semiring', ('commutativity', 'distributivity')),
    'catalog:TransposeAggBinBinaryChains[0]': ('any-semiring', ('commutativity',)),
    'catalog:TransposeAggBinBinaryChains[1]': ('any-semiring', ('commutativity',)),
    'catalog:UnaryAggReorgOperation[0]': ('any-semiring', ()),
    'catalog:UnaryAggReorgOperation[1]': ('real-only', ('subtraction',)),
    'catalog:UnaryAggReorgOperation[2]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[0]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[1]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[2]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[3]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[4]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[5]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[6]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[7]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregate[8]': ('real-only', ('subtraction',)),
    'catalog:UnnecessaryAggregates[0]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregates[1]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregates[2]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregates[3]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregates[4]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregates[5]': ('any-semiring', ()),
    'catalog:UnnecessaryAggregates[6]': ('any-semiring', ('associativity', 'commutativity')),
    'catalog:UnnecessaryAggregates[7]': ('any-semiring', ('associativity', 'commutativity')),
    'catalog:UnnecessaryBinaryOperation[0]': ('any-semiring', ()),
    'catalog:UnnecessaryBinaryOperation[1]': ('any-semiring', ()),
    'catalog:UnnecessaryBinaryOperation[2]': ('any-semiring', ()),
    'catalog:UnnecessaryBinaryOperation[3]': ('real-only', ('subtraction',)),
    'catalog:UnnecessaryBinaryOperation[4]': ('any-semiring', ('annihilation',)),
    'catalog:UnnecessaryBinaryOperation[5]': ('real-only', ('subtraction',)),
    'catalog:UnnecessaryMinus[0]': ('real-only', ('subtraction',)),
    'catalog:UnnecessaryOuterProduct[0]': ('any-semiring', ()),
    'catalog:UnnecessaryOuterProduct[1]': ('any-semiring', ()),
    'catalog:UnnecessaryOuterProduct[2]': ('any-semiring', ()),
    'catalog:UnnecessaryReorgOperation[0]': ('any-semiring', ()),
    'catalog:UnnecessaryReorgOperation[1]': ('any-semiring', ()),
    'catalog:pushdownCSETransposeScalarOp[0]': ('any-semiring', ()),
    'catalog:pushdownSumBinaryMult[0]': ('any-semiring', ('distributivity',)),
    'catalog:pushdownSumBinaryMult[1]': ('any-semiring', ('distributivity',)),
    'catalog:pushdownSumOnAdd[0]': ('any-semiring', ('associativity', 'commutativity')),
    'catalog:pushdownSumOnAdd[1]': ('real-only', ('subtraction',)),
    'catalog:pushdownUnaryAggTransposeOp[0]': ('any-semiring', ()),
    'catalog:pushdownUnaryAggTransposeOp[1]': ('any-semiring', ()),
    'catalog:reorderMinusMatrixMult[0]': ('real-only', ('subtraction',)),
    'catalog:reorderMinusMatrixMult[1]': ('real-only', ('subtraction',)),
    'relational:absorb-ones': ('any-semiring', ()),
    'relational:combine-addends': ('any-semiring', ('counting-literals',)),
    'relational:distribute': ('any-semiring', ('commutativity', 'distributivity')),
    'relational:drop-identities': ('any-semiring', ()),
    'relational:eliminate-unused-index': ('any-semiring', ('counting-literals',)),
    'relational:factor': ('any-semiring', ('commutativity', 'distributivity')),
    'relational:flatten-add': ('any-semiring', ('associativity', 'commutativity')),
    'relational:flatten-join': ('any-semiring', ('associativity', 'commutativity')),
    'relational:merge-nested-sums': ('any-semiring', ('associativity', 'commutativity')),
    'relational:pull-add-out-of-sum': ('any-semiring', ('associativity', 'commutativity')),
    'relational:pull-factor-out-of-sum': ('any-semiring', ('commutativity', 'distributivity')),
    'relational:push-factor-into-sum': ('any-semiring', ('commutativity', 'distributivity')),
    'relational:push-sum-into-add': ('any-semiring', ('associativity', 'commutativity')),
}

#: the audited real-only rule keys (all subtraction/negation patterns)
REAL_ONLY_RULES = frozenset(
    key for key, (rings, _needs) in GATING_TABLE.items() if rings != "any-semiring"
)

#: capability needs that hold in every commutative semiring (under the
#: counting-literal interpretation) and therefore never gate anything
_UNIVERSAL_NEEDS = frozenset(
    {
        "associativity",
        "commutativity",
        "distributivity",
        "annihilation",
        "counting-literals",
        "counting_literals",
    }
)


def derive_gating_table(matrix: Mapping) -> Dict[str, Tuple[str, Tuple[str, ...]]]:
    """The gating table a committed rule matrix implies.

    This is the single source of the table's shape: the committed
    :data:`GATING_TABLE` above was generated by this function and the
    analysis staleness check asserts they still agree.
    """
    table: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
    for key, record in matrix["rules"].items():
        declared = record["declared"]
        table[key] = (str(declared["rings"]), tuple(sorted(declared["needs"])))
    return table


def check_gating_derivation(matrix: Mapping) -> List[str]:
    """Differences between :data:`GATING_TABLE` and what ``matrix`` implies.

    Returns human-readable drift descriptions (empty = in sync).  Used by
    the ``repro.analysis`` rules pass so a stale table is a CI finding.
    """
    derived = derive_gating_table(matrix)
    problems: List[str] = []
    for key in sorted(set(GATING_TABLE) - set(derived)):
        problems.append(f"gating table entry {key!r} has no rule in the matrix")
    for key in sorted(set(derived) - set(GATING_TABLE)):
        problems.append(f"matrix rule {key!r} missing from the gating table")
    for key in sorted(set(derived) & set(GATING_TABLE)):
        if derived[key] != GATING_TABLE[key]:
            problems.append(
                f"gating table entry {key!r} is {GATING_TABLE[key]!r} but the "
                f"matrix implies {derived[key]!r}"
            )
    return problems


def _needs_satisfied(needs: Sequence[str], ring: Semiring) -> bool:
    for need in needs:
        normalized = need.replace("_", "-")
        if normalized == "subtraction":
            if not ring.has_subtraction:
                return False
        elif normalized in ("division", "multiplicative-inverse"):
            if not ring.has_division:
                return False
        elif normalized == "idempotence":
            if not ring.idempotent:
                return False
        elif need not in _UNIVERSAL_NEEDS and normalized not in _UNIVERSAL_NEEDS:
            # An unrecognized capability: refuse rather than guess.
            return False
    return True


def rule_allowed(key: str, ring: Semiring) -> bool:
    """May the rule registered under ``key`` fire when compiling for ``ring``?"""
    if ring.is_real:
        return True
    entry = GATING_TABLE.get(key)
    if entry is None:
        return False  # not audited -> not trusted off the real ring
    rings, needs = entry
    if rings != "any-semiring":
        return False
    return _needs_satisfied(needs, ring)


def relational_key(rule_name: str) -> str:
    """Audit key of a relational rule (matches ``rules_audit`` naming)."""
    return f"relational:{rule_name}"


def gate_relational(rules: Iterable, ring: Semiring) -> List:
    """Filter relational rule objects down to those ``ring`` can justify."""
    if ring.is_real:
        return list(rules)
    return [rule for rule in rules if rule_allowed(relational_key(rule.name), ring)]


def catalog_keys(patterns: Iterable) -> List[Tuple[str, object]]:
    """(audit key, pattern) pairs using the audit's per-method positions."""
    counters: Dict[str, int] = {}
    keyed: List[Tuple[str, object]] = []
    for pattern in patterns:
        position = counters.get(pattern.method, 0)
        counters[pattern.method] = position + 1
        keyed.append((f"catalog:{pattern.method}[{position}]", pattern))
    return keyed


def gate_catalog(patterns: Iterable, ring: Semiring) -> List:
    """Filter catalog patterns down to those ``ring`` can justify.

    ``patterns`` must be the full catalog in audit order
    (:func:`repro.rules.systemml_catalog.all_patterns`) — per-method
    positions, and therefore audit keys, depend on the ordering.
    """
    keyed = catalog_keys(patterns)
    if ring.is_real:
        return [pattern for _key, pattern in keyed]
    return [pattern for key, pattern in keyed if rule_allowed(key, ring)]


# ---------------------------------------------------------------------------
# Expression-level compatibility
# ---------------------------------------------------------------------------


class RingCompatibilityError(ValueError):
    """An expression uses an operator the target ring cannot execute."""


def check_ring_compatibility(expr, ring: Semiring) -> None:
    """Reject expressions a non-real ``ring`` cannot soundly execute.

    Raises :class:`RingCompatibilityError` at compile time — before any
    saturation work — when the expression contains a node whose semantics
    require a capability the ring lacks:

    * ``Neg``/``ElemMinus`` need subtraction;
    * ``ElemDiv`` needs a multiplicative inverse;
    * ``UnaryFunc`` (exp, log, …) is real analysis, not semiring algebra;
    * fused physical operators (``WSLoss``, ``WCeMM``, ``WDivMM``,
      ``SProp``, ``MMChain``) hard-code real arithmetic;
    * literals without a counting reading (negative, fractional, or
      non-finite) have no canonical image in the ring.

    No-op for the real ring.
    """
    if ring.is_real:
        return
    from repro.lang import dag
    from repro.lang import expr as la

    for node in dag.postorder(expr):
        if isinstance(node, (la.Neg, la.ElemMinus)) and not ring.has_subtraction:
            raise RingCompatibilityError(
                f"{type(node).__name__} requires subtraction, which the "
                f"{ring.name!r} semiring does not have"
            )
        if isinstance(node, la.ElemDiv) and not ring.has_division:
            raise RingCompatibilityError(
                f"ElemDiv requires a multiplicative inverse, which the "
                f"{ring.name!r} semiring does not have"
            )
        if isinstance(node, la.UnaryFunc):
            raise RingCompatibilityError(
                f"UnaryFunc({node.func!r}) is real-valued analysis and has "
                f"no interpretation in the {ring.name!r} semiring"
            )
        if isinstance(node, (la.WSLoss, la.WCeMM, la.WDivMM, la.SProp, la.MMChain)):
            raise RingCompatibilityError(
                f"fused operator {type(node).__name__} hard-codes real "
                f"arithmetic and cannot run under the {ring.name!r} semiring"
            )
        if isinstance(node, (la.Literal, la.FilledMatrix)):
            ring.encode_literal(node.value)  # raises RingLiteralError
        if isinstance(node, la.Power):
            exponent = float(node.exponent)
            if not (exponent >= 0 and exponent.is_integer()):
                raise RingCompatibilityError(
                    f"Power exponent {node.exponent!r} is not a non-negative "
                    f"integer; only ⊗-folds exist in the {ring.name!r} semiring"
                )
