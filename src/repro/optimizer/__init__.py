"""The SPORES optimizer: lower → saturate → extract → lift (Fig. 13)."""

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.pipeline import (
    OptimizationReport,
    PhaseTimes,
    PlanArtifact,
    SporesOptimizer,
    compile_expression,
    optimize,
)
from repro.optimizer.derivation import DerivationResult, derive
from repro.optimizer.guards import DimGuard, TemplateGuard, derive_guard, exact_guard

__all__ = [
    "OptimizerConfig",
    "SporesOptimizer",
    "OptimizationReport",
    "PhaseTimes",
    "PlanArtifact",
    "compile_expression",
    "optimize",
    "derive",
    "DimGuard",
    "TemplateGuard",
    "derive_guard",
    "exact_guard",
    "DerivationResult",
]
