"""The SPORES optimizer: lower → saturate → extract → lift (Fig. 13)."""

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.pipeline import (
    OptimizationReport,
    PhaseTimes,
    PlanArtifact,
    SporesOptimizer,
    compile_expression,
    optimize,
)
from repro.optimizer.derivation import DerivationResult, derive

__all__ = [
    "OptimizerConfig",
    "SporesOptimizer",
    "OptimizationReport",
    "PhaseTimes",
    "PlanArtifact",
    "compile_expression",
    "optimize",
    "derive",
    "DerivationResult",
]
