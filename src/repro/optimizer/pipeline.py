"""The SPORES optimizer pipeline (Fig. 13).

``optimize`` takes an LA expression (a HOP-DAG root in SystemML terms) and
returns an equivalent, hopefully cheaper, LA expression:

1. the DAG is split at *optimization barriers* (operators outside the
   sum-product fragment — element-wise division, ``exp``/``log``/…,
   fractional powers).  Each barrier's children are optimized recursively
   and the barrier itself is preserved, exactly as SystemML's DAGs are "cut
   into small pieces by uninterpreted functions" (Sec. 4.3);
2. each sum-product region is lowered to RA (R_LR);
3. the RA plan seeds an e-graph which is saturated with R_EQ under the
   configured strategy (sampling or depth-first);
4. the cheapest equivalent plan is extracted (greedy or ILP) under the
   sparsity/nnz cost model;
5. the plan is lifted back to LA and cleaned up.

Every phase is timed; the resulting :class:`OptimizationReport` is what the
compile-time figures of the paper (Fig. 16) are built from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cost.la_cost import LACostModel
from repro.egraph.graph import EGraph
from repro.egraph.runner import Runner, RunReport
from repro.extract import GreedyExtractor, ILPExtractor
from repro.lang import dag
from repro.lang import expr as la
from repro.optimizer.config import OptimizerConfig
from repro.ra.rexpr import RPlanOutput
from repro.rules import relational_rules
from repro.runtime.fusion import fuse_operators
from repro.translate import LiftError, LoweringError, lift, lower, simplify
from repro.translate.lower import expand_fused, is_barrier


@dataclass
class PhaseTimes:
    """Wall-clock seconds spent in each optimizer phase."""

    translate: float = 0.0
    saturate: float = 0.0
    extract: float = 0.0

    @property
    def total(self) -> float:
        return self.translate + self.saturate + self.extract

    def __iadd__(self, other: "PhaseTimes") -> "PhaseTimes":
        self.translate += other.translate
        self.saturate += other.saturate
        self.extract += other.extract
        return self


@dataclass
class OptimizationReport:
    """Result of optimizing one LA expression."""

    original: la.LAExpr
    optimized: la.LAExpr
    phase_times: PhaseTimes = field(default_factory=PhaseTimes)
    saturation_reports: List[RunReport] = field(default_factory=list)
    original_cost: float = 0.0
    optimized_cost: float = 0.0
    #: regions that fell back to the original expression (lift failure or no
    #: improvement found)
    fallback_regions: int = 0
    regions: int = 0

    @property
    def improved(self) -> bool:
        return self.optimized_cost < self.original_cost

    @property
    def speedup_estimate(self) -> float:
        if self.optimized_cost <= 0:
            return 1.0
        return self.original_cost / self.optimized_cost

    @property
    def saturated(self) -> bool:
        return all(report.saturated for report in self.saturation_reports)


class SporesOptimizer:
    """Equality-saturation optimizer for LA expressions."""

    def __init__(self, config: Optional[OptimizerConfig] = None) -> None:
        self.config = config or OptimizerConfig()
        self.cost_model = LACostModel()

    # -- public API ----------------------------------------------------------------
    def optimize(self, expr: la.LAExpr) -> OptimizationReport:
        """Optimize an LA expression and report phase timings and costs."""
        report = OptimizationReport(original=expr, optimized=expr)
        optimized = self._optimize_node(expr, report, {})
        if self.config.simplify_output:
            optimized = simplify(optimized)
        report.optimized = optimized
        report.original_cost = self.cost_model.total(expr)
        report.optimized_cost = self.cost_model.total(optimized)
        if self.config.keep_only_improvements and report.optimized_cost > report.original_cost:
            report.optimized = expr
            report.optimized_cost = report.original_cost
        return report

    def __call__(self, expr: la.LAExpr) -> la.LAExpr:
        return self.optimize(expr).optimized

    # -- barrier handling -------------------------------------------------------------
    def _optimize_node(
        self,
        expr: la.LAExpr,
        report: OptimizationReport,
        cache: Dict[la.LAExpr, la.LAExpr],
    ) -> la.LAExpr:
        """Optimize ``expr``, splitting at barrier operators."""
        if expr in cache:
            return cache[expr]
        if is_barrier(expr) or self._contains_barrier(expr):
            children = [self._optimize_node(child, report, cache) for child in expr.children]
            result = expr if not expr.children else expr.with_children(children)
        else:
            result = self._optimize_region(expr, report)
        cache[expr] = result
        return result

    @staticmethod
    def _contains_barrier(expr: la.LAExpr) -> bool:
        return any(is_barrier(node) for node in dag.postorder(expr))

    # -- one sum-product region ----------------------------------------------------------
    def _optimize_region(self, expr: la.LAExpr, report: OptimizationReport) -> la.LAExpr:
        report.regions += 1
        if not expr.children:
            return expr
        phase = PhaseTimes()
        try:
            start = time.perf_counter()
            lowering = lower(expr)
            phase.translate += time.perf_counter() - start

            egraph = EGraph()
            start = time.perf_counter()
            root = egraph.add_term(lowering.plan.body)
            rules = relational_rules(indexed=self.config.indexed_matching)
            run_report = Runner(self.config.runner).run(egraph, rules)
            phase.saturate += time.perf_counter() - start
            report.saturation_reports.append(run_report)

            start = time.perf_counter()
            extractor = self._make_extractor()
            extraction = extractor.extract(egraph, root)
            phase.extract += time.perf_counter() - start

            start = time.perf_counter()
            plan = RPlanOutput(extraction.expr, lowering.plan.row_attr, lowering.plan.col_attr)
            lifted = lift(plan, lowering.symbols, lowering.ones_dims)
            lifted = simplify(lifted) if self.config.simplify_output else lifted
            phase.translate += time.perf_counter() - start
        except (LoweringError, LiftError):
            report.fallback_regions += 1
            report.phase_times += phase
            return expr
        report.phase_times += phase

        if self.config.keep_only_improvements:
            if self._plan_cost(lifted) > self._plan_cost(expr):
                report.fallback_regions += 1
                return expr
        return lifted

    def _plan_cost(self, expr: la.LAExpr) -> float:
        """Estimated cost of a plan, after fusion when fusion-aware."""
        if self.config.fusion_aware:
            expr = fuse_operators(expr)
        return self.cost_model.total(expr)

    def _make_extractor(self):
        if self.config.extractor == "ilp":
            return ILPExtractor(time_limit=self.config.ilp_time_limit)
        return GreedyExtractor()


def optimize(expr: la.LAExpr, config: Optional[OptimizerConfig] = None) -> OptimizationReport:
    """Optimize ``expr`` with the given configuration (module-level shortcut)."""
    return SporesOptimizer(config).optimize(expr)
