"""The SPORES optimizer pipeline (Fig. 13).

The core is the pure function :func:`compile_expression`: it takes an LA
expression (a HOP-DAG root in SystemML terms) and returns a serializable
:class:`PlanArtifact` — the equivalent, hopefully cheaper, expression plus
its full lineage (report, fused physical plan).  The legacy ``optimize`` /
:class:`SporesOptimizer` surface is a thin shim returning just the report.
The phases:

1. the DAG is split at *optimization barriers* (operators outside the
   sum-product fragment — element-wise division, ``exp``/``log``/…,
   fractional powers).  Each barrier's children are optimized recursively
   and the barrier itself is preserved, exactly as SystemML's DAGs are "cut
   into small pieces by uninterpreted functions" (Sec. 4.3);
2. each sum-product region is lowered to RA (R_LR);
3. the RA plan seeds an e-graph which is saturated with R_EQ under the
   configured strategy (sampling or depth-first);
4. the cheapest equivalent plan is extracted (greedy or ILP) under the
   sparsity/nnz cost model;
5. the plan is lifted back to LA and cleaned up.

Every phase is timed; the resulting :class:`OptimizationReport` is what the
compile-time figures of the paper (Fig. 16) are built from.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.cost.la_cost import LACostModel
from repro.egraph.graph import EGraph
from repro.egraph.runner import Runner, RunReport
from repro.extract import GreedyExtractor, ILPExtractor
from repro.lang import dag
from repro.lang import expr as la
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.ring_gate import check_ring_compatibility
from repro.ra.rexpr import RPlanOutput
from repro.reliability.errors import OptimizerBudgetExceeded
from repro.reliability.faults import NO_FAULTS, FaultInjector
from repro.rules import relational_rules
from repro.runtime.fusion import fuse_operators
from repro.translate import LiftError, LoweringError, lift, lower, simplify
from repro.translate.lower import is_barrier

# Global observability instruments (no-ops until `repro.obs.enable()`).
# Resolved once at import: the registry hands back the same objects for the
# same names, so these are stable references, not per-call lookups.
_TRACER = obs.tracer()
_COMPILES = obs.registry().counter(
    "compile_total", "Expressions compiled through the optimizer pipeline"
)
_COMPILE_SECONDS = obs.registry().histogram(
    "compile_seconds", "Wall-clock seconds per compiled expression"
)
_REGION_FALLBACKS = obs.registry().counter(
    "compile_region_fallbacks_total",
    "Sum-product regions that fell back to their original expression",
)


@dataclass
class PhaseTimes:
    """Wall-clock seconds spent in each optimizer phase."""

    translate: float = 0.0
    saturate: float = 0.0
    extract: float = 0.0

    @property
    def total(self) -> float:
        return self.translate + self.saturate + self.extract

    def __iadd__(self, other: "PhaseTimes") -> "PhaseTimes":
        self.translate += other.translate
        self.saturate += other.saturate
        self.extract += other.extract
        return self


@dataclass
class OptimizationReport:
    """Result of optimizing one LA expression."""

    original: la.LAExpr
    optimized: la.LAExpr
    phase_times: PhaseTimes = field(default_factory=PhaseTimes)
    saturation_reports: List[RunReport] = field(default_factory=list)
    original_cost: float = 0.0
    optimized_cost: float = 0.0
    #: regions that fell back to the original expression (lift failure or no
    #: improvement found)
    fallback_regions: int = 0
    regions: int = 0

    @property
    def improved(self) -> bool:
        return self.optimized_cost < self.original_cost

    @property
    def speedup_estimate(self) -> float:
        """Estimated cost ratio original/optimized.

        A zero optimized cost against a positive original cost is a *real*
        (unbounded) speedup — e.g. the whole expression folded to a constant
        — and reports ``inf`` rather than pretending nothing improved.  Only
        when both costs are zero (nothing to optimize) is the ratio 1.
        """
        if self.optimized_cost <= 0:
            return float("inf") if self.original_cost > 0 else 1.0
        return self.original_cost / self.optimized_cost

    @property
    def saturated(self) -> bool:
        return all(report.saturated for report in self.saturation_reports)


class SporesOptimizer:
    """Equality-saturation optimizer for LA expressions.

    A thin object-style shim over the pure :func:`compile_expression` core,
    kept for the legacy one-shot surface: ``optimize`` returns only the
    :class:`OptimizationReport` and discards the rest of the artifact.
    """

    def __init__(self, config: Optional[OptimizerConfig] = None) -> None:
        self.config = config or OptimizerConfig()
        self.cost_model = LACostModel(ring=self.config.ring())

    def optimize(self, expr: la.LAExpr) -> OptimizationReport:
        """Optimize an LA expression and report phase timings and costs."""
        return compile_expression(expr, self.config).report

    def __call__(self, expr: la.LAExpr) -> la.LAExpr:
        return self.optimize(expr).optimized


def optimize(expr: la.LAExpr, config: Optional[OptimizerConfig] = None) -> OptimizationReport:
    """Optimize ``expr`` with the given configuration (module-level shortcut)."""
    return compile_expression(expr, config).report


# ---------------------------------------------------------------------------
# The pure pipeline core
# ---------------------------------------------------------------------------


def _optimize_node(
    expr: la.LAExpr,
    report: OptimizationReport,
    cache: Dict[la.LAExpr, la.LAExpr],
    config: OptimizerConfig,
    cost_model: LACostModel,
    faults: FaultInjector,
    deadline: Optional[float],
) -> la.LAExpr:
    """Optimize ``expr``, splitting at barrier operators."""
    if expr in cache:
        return cache[expr]
    if is_barrier(expr) or _contains_barrier(expr):
        children = [
            _optimize_node(child, report, cache, config, cost_model, faults, deadline)
            for child in expr.children
        ]
        result = expr if not expr.children else expr.with_children(children)
    else:
        result = _optimize_region(expr, report, config, cost_model, faults, deadline)
    cache[expr] = result
    return result


def _contains_barrier(expr: la.LAExpr) -> bool:
    return any(is_barrier(node) for node in dag.postorder(expr))


def _check_budget(deadline: Optional[float], report: OptimizationReport) -> None:
    """Raise :class:`OptimizerBudgetExceeded` once the compile deadline passed.

    Checked between phases and regions (Python can't preempt a saturation
    run mid-iteration; the runner's own ``time_limit`` bounds each run), so
    an overrunning compile stops at the next phase boundary instead of
    starting another region's saturation.
    """
    if deadline is not None and time.perf_counter() > deadline:
        raise OptimizerBudgetExceeded(
            f"optimizer budget exhausted after {report.regions} region(s); "
            "falling back to the baseline plan is sound (R_EQ)"
        )


def _optimize_region(
    expr: la.LAExpr,
    report: OptimizationReport,
    config: OptimizerConfig,
    cost_model: LACostModel,
    faults: FaultInjector,
    deadline: Optional[float],
) -> la.LAExpr:
    """Optimize one sum-product region: lower, saturate, extract, lift.

    Fault contract (``optimizer.saturate``): checked once per region just
    before the saturation run, alongside the wall-clock budget.  A raised
    :class:`OptimizerBudgetExceeded` propagates out of the whole compile —
    the session catches it and degrades to the baseline plan; nothing
    half-optimized is ever returned.
    """
    report.regions += 1
    if not expr.children:
        return expr
    phase = PhaseTimes()
    _check_budget(deadline, report)
    faults.check("optimizer.saturate", str(report.regions - 1))
    try:
        # Each phase keeps its PhaseTimes accumulation (serialization and the
        # compile-time figures depend on it) and additionally opens a trace
        # span — spans carry tree structure and export; PhaseTimes stays the
        # cheap always-on aggregate.
        with _TRACER.span("compile.lower", region=report.regions - 1):
            start = time.perf_counter()
            lowering = lower(expr)
            phase.translate += time.perf_counter() - start

        egraph = EGraph()
        with _TRACER.span("compile.saturate", region=report.regions - 1) as saturate_span:
            start = time.perf_counter()
            root = egraph.add_term(lowering.plan.body)
            rules = relational_rules(indexed=config.indexed_matching, ring=config.ring())
            run_report = Runner(config.runner).run(egraph, rules)
            phase.saturate += time.perf_counter() - start
            saturate_span.set_attribute("iterations", run_report.num_iterations)
            saturate_span.set_attribute("stop_reason", run_report.stop_reason.value)
            saturate_span.set_attribute("enodes", run_report.final_enodes)
        report.saturation_reports.append(run_report)
        _check_budget(deadline, report)

        with _TRACER.span("compile.extract", region=report.regions - 1) as extract_span:
            start = time.perf_counter()
            extractor = _make_extractor(config)
            extraction = extractor.extract(egraph, root)
            phase.extract += time.perf_counter() - start
            extract_span.set_attribute("extractor", config.extractor)

        with _TRACER.span("compile.lift", region=report.regions - 1):
            start = time.perf_counter()
            plan = RPlanOutput(extraction.expr, lowering.plan.row_attr, lowering.plan.col_attr)
            lifted = lift(plan, lowering.symbols, lowering.ones_dims)
            lifted = simplify(lifted, ring=config.ring()) if config.simplify_output else lifted
            phase.translate += time.perf_counter() - start
    except (LoweringError, LiftError):
        report.fallback_regions += 1
        _REGION_FALLBACKS.inc()
        report.phase_times += phase
        return expr
    report.phase_times += phase

    if config.keep_only_improvements:
        if _plan_cost(lifted, config, cost_model) > _plan_cost(expr, config, cost_model):
            report.fallback_regions += 1
            _REGION_FALLBACKS.inc()
            return expr
    return lifted


def _plan_cost(expr: la.LAExpr, config: OptimizerConfig, cost_model: LACostModel) -> float:
    """Estimated cost of a plan, after fusion when fusion-aware.

    Fusion only applies under the real ring: the fused operators (wsloss,
    sprop, mmchain, …) hard-code real arithmetic, so for any other ring the
    candidate plans are compared — and later executed — unfused.
    """
    if config.fusion_aware and config.ring().is_real:
        expr = fuse_operators(expr)
    return cost_model.total(expr)


def _make_extractor(config: OptimizerConfig):
    if config.extractor == "ilp":
        return ILPExtractor(time_limit=config.ilp_time_limit)
    return GreedyExtractor()


# ---------------------------------------------------------------------------
# Compile-once artifacts (the Session API's unit of caching)
# ---------------------------------------------------------------------------


@dataclass
class PlanArtifact:
    """The result of compiling one LA expression, with full lineage.

    This is the serializable artifact the Session API (:mod:`repro.api`)
    caches and executes: the declared expression, the logical plan the
    extractor chose, the physical plan after operator fusion, and the
    :class:`OptimizationReport` (phase timings, saturation reports, costs)
    the compile-time figures are built from.  ``fused`` is what the runtime
    executes; ``optimized`` is kept so the algebraic rewrite remains
    inspectable after fusion has collapsed it into physical operators.
    """

    original: la.LAExpr
    optimized: la.LAExpr
    report: OptimizationReport
    extractor: str = "greedy"
    #: whether the physical plan applies operator fusion (config.fusion_aware)
    fusion_aware: bool = True
    _fused: Optional[la.LAExpr] = field(default=None, repr=False)

    @property
    def fused(self) -> la.LAExpr:
        """The physical plan, fusing lazily on first access.

        Legacy one-shot callers only read the report, so the fusion pass is
        deferred until something (the Session, serialization) actually needs
        the executable plan.  The computation is idempotent, making the
        unsynchronized cache benign under concurrent access.
        """
        if self._fused is None:
            self._fused = (
                fuse_operators(self.optimized) if self.fusion_aware else self.optimized
            )
        return self._fused

    @property
    def improved(self) -> bool:
        return self.report.improved

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable lineage record of this compilation.

        Expressions are rendered with the DML-like printer; the record is an
        audit artifact (what was compiled, what it became, what it cost),
        not a loadable plan format — the loadable codec lives in
        :mod:`repro.serialize`, which the persistent plan store uses to
        round-trip whole artifacts across processes.
        """
        report = self.report
        speedup = report.speedup_estimate
        return {
            "original": str(self.original),
            "optimized": str(self.optimized),
            "fused": str(self.fused),
            "extractor": self.extractor,
            "original_cost": report.original_cost,
            "optimized_cost": report.optimized_cost,
            # strict-JSON safe: an unbounded speedup serializes as null, not
            # the non-standard Infinity token json.dumps would emit
            "speedup_estimate": speedup if math.isfinite(speedup) else None,
            "regions": report.regions,
            "fallback_regions": report.fallback_regions,
            "phase_times": {
                "translate": report.phase_times.translate,
                "saturate": report.phase_times.saturate,
                "extract": report.phase_times.extract,
                "total": report.phase_times.total,
            },
            "saturation": [
                {
                    "stop_reason": run.stop_reason.value,
                    "saturated": run.saturated,
                    "iterations": run.num_iterations,
                    "final_enodes": run.final_enodes,
                    "final_classes": run.final_classes,
                    "bans": run.bans,
                    "total_time": run.total_time,
                }
                for run in report.saturation_reports
            ],
        }


def compile_expression(
    expr: la.LAExpr,
    config: Optional[OptimizerConfig] = None,
    faults: Optional[FaultInjector] = None,
    budget: Optional[float] = None,
) -> PlanArtifact:
    """Compile ``expr`` once: lower, saturate, extract, lift, fuse.

    This is the pipeline's single entry point and its only stateful-looking
    seam — a pure function of ``(expr, config)``: the same inputs always
    produce the same artifact.  The Session API builds its plan cache on
    it; :class:`SporesOptimizer` and :func:`optimize` are thin one-shot
    shims that return just the artifact's report.

    ``budget`` bounds the whole compile's wall clock (seconds): on overrun
    — checked at phase boundaries — the compile raises
    :class:`~repro.reliability.OptimizerBudgetExceeded` instead of
    returning, and the caller (the session's degraded-mode path) falls
    back to :func:`baseline_artifact`.  ``faults`` threads the
    fault-injection schedule through the ``optimizer.saturate`` site; the
    defaults keep the function pure and quiet.
    """
    config = config or OptimizerConfig()
    ring = config.ring()
    if not ring.is_real:
        check_ring_compatibility(expr, ring)
    cost_model = LACostModel(ring=ring)
    injector = faults or NO_FAULTS
    deadline = None if budget is None else time.perf_counter() + budget
    report = OptimizationReport(original=expr, optimized=expr)
    with _TRACER.span("compile") as compile_span, _COMPILE_SECONDS.time():
        optimized = _optimize_node(expr, report, {}, config, cost_model, injector, deadline)
        if config.simplify_output:
            optimized = simplify(optimized, ring=ring)
        compile_span.set_attribute("regions", report.regions)
        compile_span.set_attribute("fallback_regions", report.fallback_regions)
    _COMPILES.inc()
    report.optimized = optimized
    report.original_cost = cost_model.total(expr)
    report.optimized_cost = cost_model.total(optimized)
    if config.keep_only_improvements and report.optimized_cost > report.original_cost:
        report.optimized = expr
        report.optimized_cost = report.original_cost
    return PlanArtifact(
        original=expr,
        optimized=report.optimized,
        report=report,
        extractor=config.extractor,
        fusion_aware=config.fusion_aware and ring.is_real,
    )


def baseline_artifact(
    expr: la.LAExpr, config: Optional[OptimizerConfig] = None
) -> PlanArtifact:
    """The degraded-mode artifact: ``expr`` unoptimized, no saturation.

    Sound by construction — R_EQ guarantees every optimized plan equals
    the input, so the input itself is always a correct plan.  Operator
    fusion (when configured) is still applied lazily by the artifact: it
    is the physical lowering both the cost model and the executor assume,
    not an algebraic rewrite.  This is what the session executes when the
    optimizer overruns its budget or crashes; it costs two cost-model
    walks and nothing else.
    """
    config = config or OptimizerConfig()
    ring = config.ring()
    cost = LACostModel(ring=ring).total(expr)
    report = OptimizationReport(original=expr, optimized=expr)
    report.original_cost = cost
    report.optimized_cost = cost
    return PlanArtifact(
        original=expr,
        optimized=expr,
        report=report,
        extractor=config.extractor,
        fusion_aware=config.fusion_aware and ring.is_real,
    )
