"""Configuration of the SPORES optimizer pipeline."""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.egraph.runner import RunnerConfig


@dataclass
class OptimizerConfig:
    """Controls saturation strategy, extraction strategy and budgets.

    The three named presets correspond to the configurations compared in
    Figures 16 and 17 of the paper:

    * ``sampling_ilp``   — match sampling + ILP extraction (the default),
    * ``sampling_greedy``— match sampling + greedy extraction,
    * ``dfs_greedy``     — depth-first saturation + greedy extraction.
    """

    #: e-graph saturation budget and scheduling strategy
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    #: "greedy" or "ilp"
    extractor: str = "ilp"
    #: wall-clock budget handed to the ILP solver (seconds)
    ilp_time_limit: float = 10.0
    #: apply the post-lift LA clean-up pass
    simplify_output: bool = True
    #: keep the optimized expression only if its estimated cost improves on
    #: the input's (SystemML behaves the same way: rewrites must not regress)
    keep_only_improvements: bool = True
    #: compare candidate plans after operator fusion, so a rewrite never
    #: destroys a fusible pattern (wsloss, wcemm, mmchain) that is cheaper
    #: than the rewritten form — the paper integrates fused operators into
    #: the search the same way (Sec. 3.3)
    fusion_aware: bool = True
    #: e-match through the e-graph's operator index (the default); disable to
    #: fall back to the legacy full-scan searchers, which exists only so the
    #: compile-time benchmarks can quantify the index (pairs with
    #: ``runner.incremental`` for the dirty-class tracking)
    indexed_matching: bool = True
    #: semiring plans compile for and execute over (a registered ring name:
    #: "real", "min-plus", "max-times", "bool").  Non-real rings gate out the
    #: real-only rewrite rules (see ``repro.optimizer.ring_gate``), disable
    #: real-arithmetic fusion, and switch the runtime to the ring's kernels.
    #: Because this field participates in :meth:`digest`, plan caches and
    #: persistent stores never mix plans across rings.
    semiring: str = "real"

    def __post_init__(self) -> None:
        if self.extractor not in ("greedy", "ilp"):
            raise ValueError(f"unknown extractor {self.extractor!r}")
        # Resolve eagerly so a typo fails at construction, not mid-compile.
        from repro.runtime.semiring import resolve_semiring

        resolve_semiring(self.semiring)

    def ring(self):
        """The resolved :class:`~repro.runtime.semiring.Semiring` object."""
        from repro.runtime.semiring import resolve_semiring

        return resolve_semiring(self.semiring)

    def digest(self) -> str:
        """Stable digest over every plan-affecting field.

        Two configurations with equal digests compile identical artifacts
        for identical expressions (``compile_expression`` is pure), so the
        persistent plan store salts its keys with this digest: a plan is
        shared across processes only when the *whole* configuration —
        saturation budget, scheduling strategy, extractor, fusion flags —
        matches the one it was compiled under.
        """
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # -- presets ---------------------------------------------------------------
    @classmethod
    def sampling_ilp(cls, **overrides) -> "OptimizerConfig":
        """Match sampling during saturation, ILP extraction (paper default)."""
        return cls(runner=RunnerConfig(strategy="sampling"), extractor="ilp", **overrides)

    @classmethod
    def sampling_greedy(cls, **overrides) -> "OptimizerConfig":
        """Match sampling during saturation, greedy extraction."""
        return cls(runner=RunnerConfig(strategy="sampling"), extractor="greedy", **overrides)

    @classmethod
    def dfs_greedy(cls, **overrides) -> "OptimizerConfig":
        """Depth-first saturation (apply every match), greedy extraction."""
        return cls(runner=RunnerConfig(strategy="dfs"), extractor="greedy", **overrides)
