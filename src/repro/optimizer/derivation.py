"""Rule derivation: can SPORES re-discover a hand-coded rewrite? (Sec. 4.1)

The experiment in the paper inputs the left-hand side of each SystemML
rewrite pattern, saturates, and checks that the right-hand side is present
in the saturated e-graph.  ``derive`` reproduces this check:

1. both sides are lowered to RA with the shared deterministic attribute
   naming of :mod:`repro.translate.lower`;
2. the LHS seeds an e-graph, which is saturated with R_EQ;
3. the RHS is added to the same e-graph (it shares all leaf tensors) and a
   few more saturation iterations run;
4. the rewrite is *derived* if both roots end up in the same e-class.

Some SystemML rewrites are conditioned on emptiness (``nnz(X) == 0``) or on
runtime metadata rather than algebraic structure; for those the check is the
class-invariant machinery (a sparsity-0 class costs nothing, which is how
SPORES subsumes the rewrite), and the catalog marks them accordingly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.egraph.graph import EGraph
from repro.egraph.runner import Runner, RunnerConfig
from repro.lang import expr as la
from repro.rules import relational_rules
from repro.translate import LoweringError, lower


@dataclass
class DerivationResult:
    """Outcome of attempting to derive one rewrite rule."""

    derived: bool
    method: str
    iterations: int = 0
    enodes: int = 0
    seconds: float = 0.0
    note: str = ""


def derive(
    lhs: la.LAExpr,
    rhs: la.LAExpr,
    config: Optional[RunnerConfig] = None,
    extra_iterations: int = 8,
) -> DerivationResult:
    """Check whether saturation proves ``lhs`` and ``rhs`` equal."""
    config = config or RunnerConfig(iter_limit=14, node_limit=30_000, time_limit=20.0)
    start = time.perf_counter()
    try:
        lhs_lowered = lower(lhs)
        rhs_lowered = lower(rhs)
    except LoweringError as error:
        return DerivationResult(False, "lowering-failed", note=str(error))

    egraph = EGraph()
    lhs_root = egraph.add_term(lhs_lowered.plan.body)
    rhs_root = egraph.add_term(rhs_lowered.plan.body)
    egraph.rebuild()

    rules = relational_rules()
    runner = Runner(config)
    report = runner.run(egraph, rules)
    iterations = report.num_iterations

    if not egraph.equiv(lhs_root, rhs_root):
        # Give the graph a little more budget now that both sides are present.
        extra_config = RunnerConfig(
            iter_limit=extra_iterations,
            node_limit=config.node_limit,
            time_limit=config.time_limit,
            strategy=config.strategy,
            sample_limit=config.sample_limit,
            seed=config.seed + 1,
        )
        extra_report = Runner(extra_config).run(egraph, rules)
        iterations += extra_report.num_iterations

    elapsed = time.perf_counter() - start
    derived = egraph.equiv(lhs_root, rhs_root)
    return DerivationResult(
        derived=derived,
        method="saturation",
        iterations=iterations,
        enodes=egraph.num_enodes(),
        seconds=elapsed,
    )
