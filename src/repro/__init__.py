"""SPORES reproduction: sum-product optimization via relational equality saturation.

This package reproduces the system described in

    Wang, Hutchison, Leang, Howe, Suciu.
    "SPORES: Sum-Product Optimization via Relational Equality Saturation
    for Large Scale Linear Algebra", VLDB 2020 (arXiv:2002.07951).

Sub-packages
------------
``repro.lang``       linear-algebra expression IR and DML-like parser
``repro.ra``         relational-algebra IR over K-relations
``repro.translate``  LA→RA lowering (R_LR) and RA→LA lifting
``repro.egraph``     e-graph engine with class invariants
``repro.rules``      relational equality rules R_EQ and the SystemML catalog
``repro.cost``       sparsity estimation and cost models
``repro.extract``    greedy and ILP plan extraction
``repro.canonical``  canonical forms and the completeness machinery
``repro.optimizer``  the end-to-end SPORES pipeline
``repro.runtime``    NumPy/SciPy execution engine with fused operators
``repro.systemml``   heuristic rule-based baseline optimizer
``repro.workloads``  ALS / GLM / SVM / MLR / PNMF workloads and data generators

Quickstart
----------
>>> from repro import Matrix, Vector, Sum, optimize
>>> X = Matrix("X", 10_000, 1_000, sparsity=0.01)
>>> u = Vector("u", X.shape.rows)
>>> v = Vector("v", X.shape.cols)
>>> report = optimize(Sum((X - u @ v.T) ** 2))
>>> print(report.optimized)
"""

from repro.lang import (
    Dim,
    Shape,
    LAExpr,
    Matrix,
    Vector,
    RowVector,
    Scalar,
    const,
    Sum,
    RowSums,
    ColSums,
    parse_expr,
)
from repro.optimizer import OptimizerConfig, SporesOptimizer, optimize, derive

__version__ = "1.0.0"

__all__ = [
    "Dim",
    "Shape",
    "LAExpr",
    "Matrix",
    "Vector",
    "RowVector",
    "Scalar",
    "const",
    "Sum",
    "RowSums",
    "ColSums",
    "parse_expr",
    "OptimizerConfig",
    "SporesOptimizer",
    "optimize",
    "derive",
    "__version__",
]
