"""SPORES reproduction: sum-product optimization via relational equality saturation.

This package reproduces the system described in

    Wang, Hutchison, Leang, Howe, Suciu.
    "SPORES: Sum-Product Optimization via Relational Equality Saturation
    for Large Scale Linear Algebra", VLDB 2020 (arXiv:2002.07951).

Sub-packages
------------
``repro.lang``       linear-algebra expression IR and DML-like parser
``repro.ra``         relational-algebra IR over K-relations
``repro.translate``  LA→RA lowering (R_LR) and RA→LA lifting
``repro.egraph``     e-graph engine with class invariants
``repro.rules``      relational equality rules R_EQ and the SystemML catalog
``repro.cost``       sparsity estimation and cost models
``repro.extract``    greedy and ILP plan extraction
``repro.canonical``  canonical forms and the completeness machinery
``repro.optimizer``  the end-to-end SPORES pipeline
``repro.runtime``    NumPy/SciPy execution engine with fused operators
``repro.systemml``   heuristic rule-based baseline optimizer
``repro.workloads``  ALS / GLM / SVM / MLR / PNMF workloads and data generators
``repro.serialize``  versioned plan codec and the persistent plan store
``repro.serve``      sharded multi-worker serving engine and warm-up CLI
``repro.obs``        observability: metrics registry, trace spans, profiling

Quickstart (Session API)
------------------------
The stable entry point is the compile-once / execute-many Session: compile
an expression into a reusable plan, then execute it against many inputs.
Recompiling the same workload *shape* — same operators, same dimension
sizes and sparsity hints, any input names — is a cache hit that skips
saturation entirely.

>>> from repro import Matrix, Vector, Sum, Session
>>> session = Session()
>>> X = Matrix("X", 10_000, 1_000, sparsity=0.01)
>>> u = Vector("u", X.shape.rows)
>>> v = Vector("v", X.shape.cols)
>>> plan = session.compile(Sum((X - u @ v.T) ** 2))
>>> print(plan.optimized)
>>> result = plan.run(X=x_vals, u=u_vals, v=v_vals)   # doctest: +SKIP

The legacy one-shot surface is kept as a thin shim over the same core:

>>> from repro import optimize
>>> report = optimize(Sum((X - u @ v.T) ** 2))
>>> print(report.optimized)
"""

import logging as _logging

from repro.lang import (
    Dim,
    Shape,
    LAExpr,
    Matrix,
    Vector,
    RowVector,
    Scalar,
    const,
    Sum,
    RowSums,
    ColSums,
    parse_expr,
)
from repro.optimizer import (
    OptimizerConfig,
    PlanArtifact,
    SporesOptimizer,
    compile_expression,
    derive,
    optimize,
)
from repro.api import (
    CacheStats,
    CompiledPlan,
    PlanBindingError,
    PlanCache,
    Session,
    TemplateGuard,
    TemplateGuardError,
)
from repro.serve import ServingEngine

# Library etiquette: the package logs through the "repro" logger tree but
# stays silent unless the application opts in (repro.obs.configure_logging
# or its own handlers).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.4.0"

__all__ = [
    "Dim",
    "Shape",
    "LAExpr",
    "Matrix",
    "Vector",
    "RowVector",
    "Scalar",
    "const",
    "Sum",
    "RowSums",
    "ColSums",
    "parse_expr",
    "OptimizerConfig",
    "SporesOptimizer",
    "optimize",
    "derive",
    "Session",
    "ServingEngine",
    "CompiledPlan",
    "PlanBindingError",
    "TemplateGuard",
    "TemplateGuardError",
    "PlanCache",
    "CacheStats",
    "PlanArtifact",
    "compile_expression",
    "__version__",
]
