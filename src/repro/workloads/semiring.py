"""Semiring workload families: shortest paths (min-plus) and reachability (bool).

The paper's five evaluation workloads are real-ring ML algorithms; these two
families exercise the same optimizer and runtime over *other* semirings —
the graph algorithms that motivated semiring-generic LA systems in the
first place:

* **SSSP** (min-plus): single-source shortest paths by Bellman-Ford
  relaxation.  One relaxation step is ``d' = min(d, A^T ⊗ d)`` where
  ``⊗`` is the min-plus matrix-vector product — exactly
  ``ElemPlus(MatMul(Transpose(A), d), d)`` once ``⊕ = min`` and
  ``⊗ = +``.  The same algebra runs Viterbi decoding: negated
  log-probabilities turn "most probable path" into "shortest path".

* **REACH** (bool): transitive reachability by frontier expansion.  One
  step is ``r' = r ∨ (A^T ⊗ r)`` over the boolean or-and ring — the same
  expression shape as SSSP with ``⊕ = or`` and ``⊗ = and``.

Both families carry a ``two_hop`` root, ``Sum(A ⊗ A)`` — the cheapest
two-hop path weight under min-plus, "does any length-2 path exist" under
bool.  Naively it materialises the n×n ⊗-product (O(n³) work); the
distributivity-only factoring the optimizer finds
(``sum(rowSums(t(A)) * rowSums(A))``) needs O(n²) — the headline win of
``benchmarks/bench_semiring.py``, achieved without any real-only rule.

Every input is generated as a dyadic rational (``k/64``), so ⊗-products and
the few-term ⊕-folds are exact in float64 and *any* re-association the
optimizer performs is bitwise identical to the naive reference — the parity
tests assert ``==``, not ``allclose``.  Each workload also bundles a
``reference`` evaluator: straight NumPy, no optimizer, the oracle the
parity suite and the benchmark check against.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.lang import Dim, Matrix, Sum
from repro.runtime.data import MatrixValue
from repro.workloads.base import Workload, WorkloadSize, WorkloadSpec

SSSP_SIZES = {
    "S": WorkloadSize("S", rows=48, cols=48, rank=1, sparsity=0.25),
    "M": WorkloadSize("M", rows=96, cols=96, rank=1, sparsity=0.15),
    "L": WorkloadSize("L", rows=192, cols=192, rank=1, sparsity=0.08),
}

REACH_SIZES = {
    "S": WorkloadSize("S", rows=48, cols=48, rank=1, sparsity=0.06),
    "M": WorkloadSize("M", rows=96, cols=96, rank=1, sparsity=0.04),
    "L": WorkloadSize("L", rows=192, cols=192, rank=1, sparsity=0.02),
}


def _dyadic_weights(n: int, density: float, rng: np.random.Generator) -> np.ndarray:
    """An n×n min-plus adjacency: dyadic edge weights, ``+inf`` non-edges.

    Weights are ``k/64`` with ``k ∈ [1, 64]``, so any sum of a handful of
    them is exact in float64 (6 fraction bits per term).  ``+inf`` is the
    min-plus zero: absent edges contribute nothing to a ``min``.
    """
    weights = rng.integers(1, 65, size=(n, n)) / 64.0
    present = rng.random((n, n)) < density
    np.fill_diagonal(present, False)
    return np.where(present, weights, np.inf)


def _bool_adjacency(n: int, density: float, rng: np.random.Generator) -> np.ndarray:
    """An n×n boolean adjacency over {0.0, 1.0}."""
    adjacency = (rng.random((n, n)) < density).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def _minplus_mv(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Naive min-plus matrix @ column-vector: ``out[i] = min_k m[i,k] + v[k]``."""
    return np.min(matrix + vector[:, 0][None, :], axis=1)[:, None]


def _bool_mv(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Naive or-and matrix @ column-vector: ``out[i] = max_k min(m[i,k], v[k])``."""
    return np.max(np.minimum(matrix, vector[:, 0][None, :]), axis=1)[:, None]


def _two_hop_min(adjacency: np.ndarray) -> float:
    """Cheapest two-hop path weight, row-blocked to bound the n³ temporary."""
    best = np.inf
    for row in adjacency:
        best = min(best, float(np.min(row[:, None] + adjacency)))
    return best


def _two_hop_bool(adjacency: np.ndarray) -> float:
    best = 0.0
    for row in adjacency:
        best = max(best, float(np.max(np.minimum(row[:, None], adjacency))))
    return best


def build_sssp(size: WorkloadSize) -> Workload:
    """Construct the SSSP workload at one ladder size (min-plus ring)."""
    n = Dim("sssp_n", size.rows)
    one = Dim("sssp_one", 1)

    A = Matrix("A", n, n, sparsity=1.0)
    d = Matrix("d", n, one, sparsity=1.0)

    # One Bellman-Ford relaxation: d'[j] = min(d[j], min_i(d[i] + A[i,j])).
    relax = (A.T @ d) + d
    # Cheapest two-hop path; factored by the optimizer to O(n²).
    two_hop = Sum(A @ A)

    def generate(seed: int) -> Dict[str, MatrixValue]:
        rng = np.random.default_rng(seed)
        adjacency = _dyadic_weights(size.rows, size.sparsity, rng)
        distances = np.full((size.rows, 1), np.inf)
        distances[0, 0] = 0.0  # the source
        # A couple of warm-up relaxations so d carries finite dyadic values.
        for _ in range(2):
            distances = np.minimum(distances, _minplus_mv(adjacency.T, distances))
        return {"A": MatrixValue.dense(adjacency), "d": MatrixValue.dense(distances)}

    def reference(inputs: Dict[str, MatrixValue]) -> Dict[str, np.ndarray]:
        adjacency = inputs["A"].to_dense()
        distances = inputs["d"].to_dense()
        return {
            "relax": np.minimum(distances, _minplus_mv(adjacency.T, distances)),
            "two_hop": np.array(_two_hop_min(adjacency)),
        }

    return Workload(
        name="SSSP",
        description="Single-source shortest paths / Viterbi (min-plus ring)",
        size=size,
        roots={"relax": relax, "two_hop": two_hop},
        generate_inputs=generate,
        semiring="min-plus",
        reference=reference,
    )


def build_reach(size: WorkloadSize) -> Workload:
    """Construct the REACH workload at one ladder size (bool or-and ring)."""
    n = Dim("reach_n", size.rows)
    one = Dim("reach_one", 1)

    A = Matrix("A", n, n, sparsity=size.sparsity)
    r = Matrix("r", n, one, sparsity=1.0)

    # One frontier expansion: r'[j] = r[j] or (exists i: r[i] and A[i,j]).
    step = (A.T @ r) + r
    # Does any length-2 path exist anywhere in the graph?
    two_hop = Sum(A @ A)

    def generate(seed: int) -> Dict[str, MatrixValue]:
        rng = np.random.default_rng(seed)
        adjacency = _bool_adjacency(size.rows, size.sparsity, rng)
        frontier = np.zeros((size.rows, 1))
        frontier[0, 0] = 1.0  # the source
        frontier = np.maximum(frontier, _bool_mv(adjacency.T, frontier))
        return {"A": MatrixValue.dense(adjacency), "r": MatrixValue.dense(frontier)}

    def reference(inputs: Dict[str, MatrixValue]) -> Dict[str, np.ndarray]:
        adjacency = inputs["A"].to_dense()
        frontier = inputs["r"].to_dense()
        return {
            "step": np.maximum(frontier, _bool_mv(adjacency.T, frontier)),
            "two_hop": np.array(_two_hop_bool(adjacency)),
        }

    return Workload(
        name="REACH",
        description="Transitive reachability (boolean or-and ring)",
        size=size,
        roots={"step": step, "two_hop": two_hop},
        generate_inputs=generate,
        semiring="bool",
        reference=reference,
    )


SSSP_SPEC = WorkloadSpec(
    name="SSSP",
    description="Single-source shortest paths / Viterbi (min-plus ring)",
    builder=build_sssp,
    sizes=SSSP_SIZES,
)

REACH_SPEC = WorkloadSpec(
    name="REACH",
    description="Transitive reachability (boolean or-and ring)",
    builder=build_reach,
    sizes=REACH_SIZES,
)

#: The non-real workload families, keyed by name.  Kept in a registry of
#: their own: the paper's harnesses iterate :data:`repro.workloads.WORKLOADS`
#: and assume real arithmetic, so the semiring families must not leak into
#: an ``all`` selection there.
SEMIRING_WORKLOADS: Dict[str, WorkloadSpec] = {
    "SSSP": SSSP_SPEC,
    "REACH": REACH_SPEC,
}
