"""Multinomial Logistic Regression (MLR) inner loop.

The expression the paper highlights for MLR is the weighting term of the
trust-region Newton step: ``P * X - P * rowSums(P) * X`` where ``P`` is the
per-row class-probability (a column vector in the two-class slice the paper
simplifies to).  Saturation factors it into ``P * (1 - P) * X`` — the exact
opposite direction of the ALS rewrite — which maps onto SystemML's fused
``sprop`` operator and allocates a single intermediate (Sec. 4.2).

The trust-region loop re-evaluates these roots every iteration; under the
Session API each root is compiled once and the iterations only pay
``plan.run``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.lang import Dim, Matrix, RowSums, Vector
from repro.runtime.data import MatrixValue
from repro.workloads.base import (
    Workload,
    WorkloadSize,
    WorkloadSpec,
    dense_vector,
    probability_vector,
    sparse_matrix,
)

SIZES = {
    "S": WorkloadSize("S", rows=10_000, cols=100, sparsity=0.1, paper_label="0.2Mx200"),
    "M": WorkloadSize("M", rows=40_000, cols=200, sparsity=0.05, paper_label="2Mx200"),
    "L": WorkloadSize("L", rows=100_000, cols=200, sparsity=0.02, paper_label="20Mx200"),
}


def build(size: WorkloadSize) -> Workload:
    """Construct the MLR workload at one ladder size."""
    n = Dim("mlr_n", size.rows)
    d = Dim("mlr_d", size.cols)

    X = Matrix("X", n, d, sparsity=size.sparsity)
    P = Vector("P", n, sparsity=1.0)       # class probability per row
    y = Vector("y", n, sparsity=1.0)
    v = Vector("v", d, sparsity=1.0)       # CG direction

    # The paper's MLR expression: P*X - P*rowSums(P)*X  ->  P*(1-P)*X
    weighted_rows = P * X - P * RowSums(P) * X
    # Trust-region Hessian-vector product using the same weighting.
    hessian_vector = X.T @ ((P * RowSums(P)) * (X @ v))
    gradient = X.T @ (P - y)

    def generate(seed: int) -> Dict[str, MatrixValue]:
        rng = np.random.default_rng(seed)
        return {
            "X": sparse_matrix(size.rows, size.cols, size.sparsity, rng),
            "P": probability_vector(size.rows, rng),
            "y": probability_vector(size.rows, rng),
            "v": dense_vector(size.cols, rng, scale=0.1),
        }

    return Workload(
        name="MLR",
        description="Multinomial logistic regression: trust-region inner loop",
        size=size,
        roots={
            "weighted_rows": weighted_rows,
            "hessian_vector": hessian_vector,
            "gradient": gradient,
        },
        generate_inputs=generate,
    )


SPEC = WorkloadSpec(
    name="MLR",
    description="Multinomial logistic regression",
    builder=build,
    sizes=SIZES,
)
