"""L2-regularized linear SVM (l2-svm) inner loop.

The inner Newton/CG iteration of SystemML's ``l2-svm`` script is dominated
by ``out = X %*% w``, the hinge-masked gradient ``t(X) %*% (out - y)`` and
the Hessian-vector product ``t(X) %*% (X %*% s)``.  As with GLM, the paper
finds that equality saturation rediscovers the same optimizations SystemML's
rules apply (mmchain fusion, dot products), so ``opt2`` and ``saturation``
should land on essentially the same plan.

The Newton/CG loop re-evaluates the same roots with fresh vectors each
step: compile once through a :class:`repro.api.Session`, execute many.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.lang import Dim, Matrix, Vector, Sum
from repro.lang import expr as la
from repro.runtime.data import MatrixValue
from repro.workloads.base import (
    Workload,
    WorkloadSize,
    WorkloadSpec,
    dense_vector,
    label_vector,
    sparse_matrix,
)

SIZES = {
    "S": WorkloadSize("S", rows=10_000, cols=200, sparsity=0.05, paper_label="0.1Mx1K"),
    "M": WorkloadSize("M", rows=40_000, cols=400, sparsity=0.02, paper_label="1Mx1K"),
    "L": WorkloadSize("L", rows=100_000, cols=600, sparsity=0.01, paper_label="10Mx1K"),
}


def build(size: WorkloadSize) -> Workload:
    """Construct the SVM workload at one ladder size."""
    n = Dim("svm_n", size.rows)
    d = Dim("svm_d", size.cols)

    X = Matrix("X", n, d, sparsity=size.sparsity)
    y = Vector("y", n, sparsity=1.0)
    w = Vector("w", d, sparsity=1.0)
    s = Vector("s", d, sparsity=1.0)       # CG direction
    lam = la.Literal(0.01)

    out = X @ w
    gradient = X.T @ (out - y) + lam * w
    hessian_vector = X.T @ (X @ s) + lam * s
    objective = Sum((out - y) ** 2) + lam * Sum(w ** 2)

    def generate(seed: int) -> Dict[str, MatrixValue]:
        rng = np.random.default_rng(seed)
        return {
            "X": sparse_matrix(size.rows, size.cols, size.sparsity, rng),
            "y": label_vector(size.rows, rng),
            "w": dense_vector(size.cols, rng, scale=0.1),
            "s": dense_vector(size.cols, rng, scale=0.1),
        }

    return Workload(
        name="SVM",
        description="L2-regularized linear SVM: Newton/CG inner loop",
        size=size,
        roots={
            "gradient": gradient,
            "hessian_vector": hessian_vector,
            "objective": objective,
        },
        generate_inputs=generate,
    )


SPEC = WorkloadSpec(
    name="SVM",
    description="L2-regularized support vector machine",
    builder=build,
    sizes=SIZES,
)
