"""Poisson Non-negative Matrix Factorization (PNMF).

PNMF's objective is ``sum(W %*% H) - sum(X * log(W %*% H))``.  The paper's
PNMF speedup comes from rewriting ``sum(W %*% H)`` into
``colSums(W) %*% rowSums(H)`` which never materialises the dense m-by-n
product.  SystemML *has* this rewrite (SumMatrixMult, Fig. 14) but refuses
to apply it because ``W %*% H`` is shared with the ``log`` term and the
rule's heuristic protects common subexpressions — the textbook example of
heuristics defeating each other (Sec. 4.2).  The multiplicative update
expressions are included as well since they dominate the remaining runtime.

The multiplicative-update loop evaluates the same three roots until
convergence — compile them once via the Session API, then iterate with
``plan.run``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.lang import ColSums, Dim, Matrix, Sum
from repro.lang.builder import log
from repro.runtime.data import MatrixValue
from repro.workloads.base import Workload, WorkloadSize, WorkloadSpec, dense_matrix, sparse_matrix

SIZES = {
    "S": WorkloadSize("S", rows=2_000, cols=500, rank=10, sparsity=0.01, paper_label="10Kx1K"),
    "M": WorkloadSize("M", rows=8_000, cols=1_000, rank=10, sparsity=0.005, paper_label="0.1Mx1K"),
    "L": WorkloadSize("L", rows=20_000, cols=2_000, rank=10, sparsity=0.002, paper_label="1Mx1K"),
}


def build(size: WorkloadSize) -> Workload:
    """Construct the PNMF workload at one ladder size."""
    m = Dim("pnmf_m", size.rows)
    n = Dim("pnmf_n", size.cols)
    r = Dim("pnmf_r", size.rank)

    X = Matrix("X", m, n, sparsity=size.sparsity)
    W = Matrix("W", m, r, sparsity=1.0)
    H = Matrix("H", r, n, sparsity=1.0)

    product = W @ H
    # Objective: the shared W %*% H is what trips SystemML's CSE guard.
    objective = Sum(product) - Sum(X * log(product))
    # Multiplicative updates (the division keeps them behind a barrier).
    h_update = H * (W.T @ (X / product)) / ColSums(W).T
    w_numerator = (X / product) @ H.T

    def generate(seed: int) -> Dict[str, MatrixValue]:
        rng = np.random.default_rng(seed)
        return {
            "X": sparse_matrix(size.rows, size.cols, size.sparsity, rng),
            "W": dense_matrix(size.rows, size.rank, rng, scale=0.5),
            "H": dense_matrix(size.rank, size.cols, rng, scale=0.5),
        }

    return Workload(
        name="PNMF",
        description="Poisson non-negative matrix factorization",
        size=size,
        roots={
            "objective": objective,
            "h_update": h_update,
            "w_numerator": w_numerator,
        },
        generate_inputs=generate,
    )


SPEC = WorkloadSpec(
    name="PNMF",
    description="Poisson non-negative matrix factorization",
    builder=build,
    sizes=SIZES,
)
