"""Evaluation workloads: the five ML algorithms of the paper's Sec. 4.

Each workload exposes the LA expressions of its inner loop plus a synthetic
data generator.  The registry :data:`WORKLOADS` is what the benchmark
harnesses iterate over; :func:`get_workload` builds one algorithm at one
point of its size ladder.
"""

from typing import Dict, List, Tuple

from repro.workloads.base import Workload, WorkloadSize, WorkloadSpec
from repro.workloads import als, glm, svm, mlr, pnmf
from repro.workloads.semiring import SEMIRING_WORKLOADS

#: All workload families, in the order the paper's figures list them.
WORKLOADS: Dict[str, WorkloadSpec] = {
    "ALS": als.SPEC,
    "GLM": glm.SPEC,
    "SVM": svm.SPEC,
    "MLR": mlr.SPEC,
    "PNMF": pnmf.SPEC,
}


def workload_names() -> List[str]:
    """Names of all workload families."""
    return list(WORKLOADS.keys())


def get_workload(name: str, size: str = "S") -> Workload:
    """Build one workload at one size-ladder point (sizes: "S", "M", "L")."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; available: {workload_names()}")
    return WORKLOADS[name].build(size)


def semiring_workload_names() -> List[str]:
    """Names of the non-real (semiring) workload families."""
    return list(SEMIRING_WORKLOADS.keys())


def get_semiring_workload(name: str, size: str = "S") -> Workload:
    """Build one semiring workload (SSSP, REACH) at one size-ladder point.

    These live in a registry of their own — the real-ring harnesses iterate
    :data:`WORKLOADS` and an ``all`` selection there must keep meaning "the
    paper's five families".  The built workload's :attr:`Workload.semiring`
    names the ring a session must be configured with to execute it.
    """
    if name not in SEMIRING_WORKLOADS:
        raise KeyError(
            f"unknown semiring workload {name!r}; available: {semiring_workload_names()}"
        )
    return SEMIRING_WORKLOADS[name].build(size)


def parse_selection(selection: str, default_size: str = "S") -> List[Tuple[str, str]]:
    """Parse a workload-list string into ``(name, size)`` pairs.

    The grammar the deploy-time tooling (``python -m repro.serve.warmup``)
    accepts: a comma-separated list of ``NAME`` or ``NAME:SIZE`` items, plus
    the wildcard ``all`` for every family at ``default_size``.  Names are
    case-insensitive; duplicates are dropped while preserving first-seen
    order so a warm-up list can be assembled from overlapping fragments.

    >>> parse_selection("als,GLM:M")
    [('ALS', 'S'), ('GLM', 'M')]
    """
    pairs: List[Tuple[str, str]] = []
    seen = set()
    for raw in selection.split(","):
        item = raw.strip()
        if not item:
            continue
        name, _, size = item.partition(":")
        size = size.strip() or default_size
        name = name.strip().upper()
        if name == "ALL":
            expanded = [(family, size) for family in workload_names()]
        else:
            if name not in WORKLOADS:
                raise KeyError(
                    f"unknown workload {name!r}; available: {workload_names()} (or 'all')"
                )
            expanded = [(name, size)]
        for pair in expanded:
            if pair[1] not in WORKLOADS[pair[0]].sizes:
                raise KeyError(
                    f"unknown size {pair[1]!r} for workload {pair[0]}; "
                    f"available: {sorted(WORKLOADS[pair[0]].sizes)}"
                )
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
    if not pairs:
        raise ValueError(f"empty workload selection: {selection!r}")
    return pairs


def resolve_selection(selection: str, default_size: str = "S") -> List[Workload]:
    """Build every workload named by a selection string (see :func:`parse_selection`)."""
    return [get_workload(name, size) for name, size in parse_selection(selection, default_size)]


__all__ = [
    "Workload",
    "WorkloadSize",
    "WorkloadSpec",
    "WORKLOADS",
    "workload_names",
    "get_workload",
    "parse_selection",
    "resolve_selection",
]
