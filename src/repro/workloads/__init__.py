"""Evaluation workloads: the five ML algorithms of the paper's Sec. 4.

Each workload exposes the LA expressions of its inner loop plus a synthetic
data generator.  The registry :data:`WORKLOADS` is what the benchmark
harnesses iterate over; :func:`get_workload` builds one algorithm at one
point of its size ladder.
"""

from typing import Dict, List

from repro.workloads.base import Workload, WorkloadSize, WorkloadSpec
from repro.workloads import als, glm, svm, mlr, pnmf

#: All workload families, in the order the paper's figures list them.
WORKLOADS: Dict[str, WorkloadSpec] = {
    "ALS": als.SPEC,
    "GLM": glm.SPEC,
    "SVM": svm.SPEC,
    "MLR": mlr.SPEC,
    "PNMF": pnmf.SPEC,
}


def workload_names() -> List[str]:
    """Names of all workload families."""
    return list(WORKLOADS.keys())


def get_workload(name: str, size: str = "S") -> Workload:
    """Build one workload at one size-ladder point (sizes: "S", "M", "L")."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; available: {workload_names()}")
    return WORKLOADS[name].build(size)


__all__ = [
    "Workload",
    "WorkloadSize",
    "WorkloadSpec",
    "WORKLOADS",
    "workload_names",
    "get_workload",
]
