"""Workload infrastructure for the evaluation benchmarks.

A :class:`Workload` bundles the inner-loop LA expressions of one ML
algorithm (the DAGs SystemML would hand to the optimizer), a synthetic data
generator matched to the algorithm's input characteristics, and the size
ladder used by the run-time figures.  The paper evaluates five algorithms
from SystemML's performance suite — ALS, GLM, SVM, MLR and PNMF — at three
data sizes each; the sizes here keep the same ratios but are scaled down so
every configuration runs in seconds on a single core (see DESIGN.md,
"Substitutions").

Workloads integrate with the Session API (:mod:`repro.api`): every input
variable carries an explicit sparsity hint (``1.0`` for dense inputs, the
ladder's density for the sparse data matrix), so compiled plans know the
exact data regime they were optimized under and can detect when observed
inputs drift away from it.  ``Workload.run_session`` compiles and executes
all roots of one algorithm through a shared session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.lang import expr as la
from repro.runtime.data import MatrixValue


@dataclass(frozen=True)
class WorkloadSize:
    """One point of a workload's size ladder."""

    label: str
    rows: int
    cols: int
    rank: int = 10
    sparsity: float = 0.01
    #: the data size the paper used at the corresponding ladder position
    paper_label: str = ""

    def scaled(self, rows_factor: float, label: Optional[str] = None) -> "WorkloadSize":
        """This size with its row count scaled (columns/rank/sparsity kept).

        Scaling only the rows and keeping the sparsity is the serving-tier
        shape of a size ladder — the same model family trained on more
        examples — and is exactly the regime a compiled plan template
        serves: same structure, same sparsity band, a dimension size moved
        within its guard range.
        """
        rows = max(1, int(round(self.rows * rows_factor)))
        return WorkloadSize(
            label=label or f"{self.label}x{rows_factor:g}",
            rows=rows,
            cols=self.cols,
            rank=self.rank,
            sparsity=self.sparsity,
            paper_label=self.paper_label,
        )


@dataclass
class Workload:
    """An algorithm's inner-loop expressions plus matching synthetic data."""

    name: str
    description: str
    size: WorkloadSize
    #: named output expressions (the roots of the HOP DAG)
    roots: Dict[str, la.LAExpr]
    #: generates named inputs for the execution engine
    generate_inputs: Callable[[int], Dict[str, MatrixValue]]
    #: the semiring the workload's expressions are meant to execute over
    #: (a registered ring name; ``"real"`` for the paper's five families)
    semiring: str = "real"
    #: optional naive reference evaluator: maps the generated inputs to the
    #: expected dense result per root, computed with straight NumPy and no
    #: optimizer — the parity oracle for the semiring families
    reference: Optional[Callable[[Dict[str, MatrixValue]], Dict[str, np.ndarray]]] = None

    def inputs(self, seed: int = 0) -> Dict[str, MatrixValue]:
        return self.generate_inputs(seed)

    @property
    def root_list(self) -> List[la.LAExpr]:
        return list(self.roots.values())

    # -- Session API integration ----------------------------------------------
    def session_plans(self, session) -> Dict[str, "object"]:
        """Compile every root through a :class:`repro.api.Session`.

        Returns ``{root_name: CompiledPlan}``.  Because all sizes of one
        workload family share their expression *structure*, a session that
        has compiled one ladder point only pays fingerprinting for repeat
        compilations of the same point, and the per-root plans can be
        executed millions of times without touching the optimizer again.
        """
        return {name: session.compile(root) for name, root in self.roots.items()}

    def run_session(self, session, seed: int = 0) -> Dict[str, "object"]:
        """Compile and execute every root via the Session API.

        Generates one synthetic input set and feeds each plan exactly the
        inputs its slots declare (plans reject extraneous names, so the full
        workload input dict is filtered per root).  Returns
        ``{root_name: ExecutionResult}``.
        """
        inputs = self.inputs(seed)
        results: Dict[str, "object"] = {}
        for name, plan in self.session_plans(session).items():
            results[name] = plan.run({k: inputs[k] for k in plan.input_names})
        return results


@dataclass
class WorkloadSpec:
    """A workload family: a builder plus its size ladder."""

    name: str
    description: str
    builder: Callable[[WorkloadSize], Workload]
    sizes: Dict[str, WorkloadSize]

    def build(self, size_label: str = "S") -> Workload:
        if size_label not in self.sizes:
            raise KeyError(
                f"unknown size {size_label!r} for workload {self.name}; "
                f"available: {sorted(self.sizes)}"
            )
        return self.builder(self.sizes[size_label])

    def build_ladder(
        self,
        count: int = 5,
        base_label: str = "S",
        factor: float = 1.25,
    ) -> List[Workload]:
        """Build a geometric size ladder of this workload family.

        Ladder point ``i`` scales the base size's rows by ``factor**i``
        (columns, rank and sparsity unchanged), so every point shares one
        canonical plan-template digest — the workload a serving tier sees
        when one model family runs at many data sizes.  The default ladder
        spans rows ×1 … ×\\ ``factor**(count-1)``, comfortably inside the
        guard ranges the cost-dominance probe derives for the evaluation
        workloads.
        """
        if count < 1:
            raise ValueError("a size ladder needs at least one point")
        base = self.sizes.get(base_label)
        if base is None:
            raise KeyError(
                f"unknown size {base_label!r} for workload {self.name}; "
                f"available: {sorted(self.sizes)}"
            )
        return [
            self.builder(base.scaled(factor**index, label=f"{base_label}+{index}"))
            for index in range(count)
        ]

    @property
    def size_labels(self) -> List[str]:
        return list(self.sizes.keys())


# ---------------------------------------------------------------------------
# Synthetic data helpers
# ---------------------------------------------------------------------------


def sparse_matrix(rows: int, cols: int, sparsity: float, rng: np.random.Generator) -> MatrixValue:
    """A random sparse matrix with the requested density."""
    return MatrixValue.random_sparse(rows, cols, sparsity, rng)


def dense_matrix(rows: int, cols: int, rng: np.random.Generator, scale: float = 1.0) -> MatrixValue:
    """A random dense matrix."""
    return MatrixValue.random_dense(rows, cols, rng, scale)


def dense_vector(rows: int, rng: np.random.Generator, scale: float = 1.0) -> MatrixValue:
    """A random dense column vector."""
    return MatrixValue.random_dense(rows, 1, rng, scale)


def probability_vector(rows: int, rng: np.random.Generator) -> MatrixValue:
    """A column vector with entries in (0, 1) — class probabilities."""
    return MatrixValue.dense(rng.uniform(0.05, 0.95, size=(rows, 1)))


def label_vector(rows: int, rng: np.random.Generator) -> MatrixValue:
    """A +/-1 label vector."""
    return MatrixValue.dense(np.where(rng.random((rows, 1)) > 0.5, 1.0, -1.0))
