"""Generalized Linear Model (GLM) inner loop.

SystemML's GLM solver spends its time in the conjugate-gradient inner loop,
whose dominant expressions are Hessian-vector products of the form
``t(X) %*% (w * (X %*% p))`` and gradient terms ``t(X) %*% (mu - y)``.  For
GLM the paper reports that saturation finds the *same* optimizations as the
hand-coded rules — chiefly the ``mmchain`` fusion — so the win over ``base``
comes from fusion rather than new rewrites (Sec. 4.2).

Every CG step re-evaluates the same three roots, so under the Session API
the whole solver costs one compilation per root; the per-iteration work is
``plan.run`` only.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.lang import Dim, Matrix, Vector, Sum
from repro.runtime.data import MatrixValue
from repro.workloads.base import (
    Workload,
    WorkloadSize,
    WorkloadSpec,
    dense_vector,
    probability_vector,
    sparse_matrix,
)

SIZES = {
    "S": WorkloadSize("S", rows=10_000, cols=200, sparsity=0.05, paper_label="0.1Mx1K"),
    "M": WorkloadSize("M", rows=40_000, cols=400, sparsity=0.02, paper_label="1Mx1K"),
    "L": WorkloadSize("L", rows=100_000, cols=600, sparsity=0.01, paper_label="10Mx1K"),
}


def build(size: WorkloadSize) -> Workload:
    """Construct the GLM workload at one ladder size."""
    n = Dim("glm_n", size.rows)
    d = Dim("glm_d", size.cols)

    X = Matrix("X", n, d, sparsity=size.sparsity)
    y = Vector("y", n, sparsity=1.0)
    w = Vector("w", n, sparsity=1.0)       # per-row working weights
    p = Vector("p", d, sparsity=1.0)       # CG search direction
    mu = Vector("mu", n, sparsity=1.0)     # current mean estimate
    beta = Vector("beta", d, sparsity=1.0)

    hessian_vector = X.T @ (w * (X @ p))
    gradient = X.T @ (mu - y)
    deviance = Sum(w * (X @ beta - y) ** 2)

    def generate(seed: int) -> Dict[str, MatrixValue]:
        rng = np.random.default_rng(seed)
        return {
            "X": sparse_matrix(size.rows, size.cols, size.sparsity, rng),
            "y": dense_vector(size.rows, rng),
            "w": probability_vector(size.rows, rng),
            "p": dense_vector(size.cols, rng, scale=0.1),
            "mu": probability_vector(size.rows, rng),
            "beta": dense_vector(size.cols, rng, scale=0.1),
        }

    return Workload(
        name="GLM",
        description="Generalized linear model: CG inner loop",
        size=size,
        roots={
            "hessian_vector": hessian_vector,
            "gradient": gradient,
            "deviance": deviance,
        },
        generate_inputs=generate,
    )


SPEC = WorkloadSpec(
    name="GLM",
    description="Generalized linear model (Poisson/logit family solver)",
    builder=build,
    sizes=SIZES,
)
