"""Alternating Least Squares matrix factorization (ALS).

The inner loop of ALS-CG in SystemML's benchmark suite repeatedly evaluates
the squared-reconstruction loss and the gradient of the factor matrices.
Two expressions dominate its cost and are the ones the paper discusses:

* the loss ``sum((X - U %*% t(V))^2) + lambda * (sum(U^2) + sum(V^2))``,
  which the optimizer should turn into the sparsity-exploiting three-term
  form (or the fused ``wsloss`` operator);
* the gradient step ``(U %*% t(V) - X) %*% V + lambda * U``, where the
  paper's headline ALS optimization expands the product to
  ``U %*% (t(V) %*% V) - X %*% V`` so that no dense m-by-n intermediate is
  ever materialised (Sec. 4.2: "SPORES expands (UV^T − X)V to UV^TV − XV to
  exploit the sparsity in X").

Both expressions recur every iteration of the solver, which is exactly the
compile-once / execute-many shape the Session API serves: compile the two
roots once (``workload.session_plans(session)``), then run the plans once
per ALS sweep.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.lang import Dim, Matrix, Sum
from repro.lang import expr as la
from repro.runtime.data import MatrixValue
from repro.workloads.base import Workload, WorkloadSize, WorkloadSpec, dense_matrix, sparse_matrix

SIZES = {
    "S": WorkloadSize("S", rows=2_000, cols=500, rank=10, sparsity=0.01, paper_label="2Kx1K"),
    "M": WorkloadSize("M", rows=8_000, cols=1_000, rank=10, sparsity=0.005, paper_label="20Kx1K"),
    "L": WorkloadSize("L", rows=20_000, cols=2_000, rank=10, sparsity=0.002, paper_label="0.2Mx1K"),
}


def build(size: WorkloadSize) -> Workload:
    """Construct the ALS workload at one ladder size."""
    m = Dim("als_m", size.rows)
    n = Dim("als_n", size.cols)
    r = Dim("als_r", size.rank)

    X = Matrix("X", m, n, sparsity=size.sparsity)
    U = Matrix("U", m, r, sparsity=1.0)
    V = Matrix("V", n, r, sparsity=1.0)
    lam = la.Literal(0.1)

    reconstruction = U @ V.T
    loss = Sum((X - reconstruction) ** 2) + lam * (Sum(U ** 2) + Sum(V ** 2))
    gradient_u = (reconstruction - X) @ V + lam * U

    def generate(seed: int) -> Dict[str, MatrixValue]:
        rng = np.random.default_rng(seed)
        return {
            "X": sparse_matrix(size.rows, size.cols, size.sparsity, rng),
            "U": dense_matrix(size.rows, size.rank, rng, scale=0.1),
            "V": dense_matrix(size.cols, size.rank, rng, scale=0.1),
        }

    return Workload(
        name="ALS",
        description="Alternating least squares: loss and factor gradient",
        size=size,
        roots={"loss": loss, "gradient_u": gradient_u},
        generate_inputs=generate,
    )


SPEC = WorkloadSpec(
    name="ALS",
    description="Alternating least squares matrix factorization",
    builder=build,
    sizes=SIZES,
)
