"""Structured trace spans with cross-thread context propagation.

A :class:`Span` is one timed region of work — a compile phase, a serve
request, a micro-batch, a tape execution — identified by a
``(trace_id, span_id)`` pair and linked to its parent by ``parent_id``.
The :class:`Tracer` keeps the *current* span context in a
``contextvars.ContextVar``, so nested ``with tracer.span(...)`` blocks
parent automatically within one thread.

Crossing threads is explicit by design: the serving engine runs a request
on whichever shard worker thread picks it up (and possibly a *different*
thread after a supervisor restart or sibling reroute), so the enqueue path
calls :meth:`Tracer.capture` and stores the :class:`SpanContext` on the
request object; the worker passes it as ``parent=`` when it opens the
serve span.  That keeps parentage intact through micro-batching,
rerouting, and restarts without any thread-local inheritance magic.

Finished spans accumulate in a bounded ring (oldest dropped) and export
two ways:

* :meth:`Tracer.export_json` — a versioned JSON document that
  :func:`spans_from_json` round-trips losslessly;
* :meth:`Tracer.export_chrome` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto): complete ``"ph": "X"`` events with
  microsecond timestamps, one ``tid`` per worker thread.

A disabled tracer hands out a shared no-op span and never touches the
context variable, so instrumented code costs one attribute check.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: sentinel distinguishing "no parent passed → inherit current" from an
#: explicit ``parent=None`` ("start a new root trace")
_UNSET = object()

_ids = itertools.count(1)
_id_lock = threading.Lock()


def _next_id() -> int:
    with _id_lock:
        return next(_ids)


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span: enough to parent a child anywhere.

    Instances are immutable and pickle/thread-safe; the serving layer
    stores one on each ``ShardRequest`` so the span opened on the worker
    thread parents to the span that enqueued it.
    """

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One timed region of work, linked into a trace tree by parent_id."""

    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int] = None
    start_time: float = 0.0  # wall clock (time.time), seconds
    duration: float = 0.0  # perf_counter delta, seconds
    attributes: Dict[str, Any] = field(default_factory=dict)
    thread: str = ""

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start_time=record["start_time"],
            duration=record["duration"],
            attributes=dict(record.get("attributes", {})),
            thread=record.get("thread", ""),
        )


class _NoopSpan:
    """The span a disabled tracer hands out: accepts everything, records nothing."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager pairing a live :class:`Span` with tracer bookkeeping."""

    __slots__ = ("_tracer", "span", "_token", "_perf_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._token: Optional[contextvars.Token] = None

    def set_attribute(self, key: str, value: Any) -> None:
        self.span.set_attribute(key, value)

    def context(self) -> SpanContext:
        return self.span.context()

    def __enter__(self) -> "_ActiveSpan":
        self.span.start_time = time.time()
        self.span.thread = threading.current_thread().name
        self._token = self._tracer._current.set(self.span.context())
        self._perf_start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.span.duration = time.perf_counter() - self._perf_start
        if exc_type is not None:
            self.span.attributes.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        if self._token is not None:
            self._tracer._current.reset(self._token)
        self._tracer._finish(self.span)


class Tracer:
    """Factory and bounded sink for :class:`Span`\\ s.

    ``max_spans`` bounds the finished-span ring — a serving process under
    sustained traffic keeps the most recent window rather than growing
    without bound, matching the metrics reservoirs.
    """

    EXPORT_VERSION = 1

    def __init__(self, enabled: bool = True, max_spans: int = 8192) -> None:
        self.enabled = enabled
        self._current: "contextvars.ContextVar[Optional[SpanContext]]" = contextvars.ContextVar(
            f"repro_trace_{_next_id()}", default=None
        )
        self._lock = threading.Lock()
        self._finished: "deque[Span]" = deque(maxlen=max_spans)
        self._dropped = 0

    # -- span lifecycle --------------------------------------------------------
    def span(self, name: str, parent: Any = _UNSET, **attributes: Any):
        """Open a span as a context manager.

        ``parent`` defaults to the current context (thread-nested spans
        parent automatically); pass a :class:`SpanContext` captured on
        another thread to stitch across threads, or ``None`` to force a
        new root trace.
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is _UNSET:
            parent_ctx = self._current.get()
        else:
            parent_ctx = parent
        if parent_ctx is None:
            trace_id = _next_id()
            parent_id = None
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_next_id(),
            parent_id=parent_id,
            attributes=dict(attributes),
        )
        return _ActiveSpan(self, span)

    def current(self) -> Optional[SpanContext]:
        """The context of the innermost open span on this thread, if any."""
        if not self.enabled:
            return None
        return self._current.get()

    def capture(self) -> Optional[SpanContext]:
        """Alias of :meth:`current` named for its cross-thread handoff use."""
        return self.current()

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)

    # -- introspection & export ------------------------------------------------
    def finished(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._dropped = 0

    def export_json(self) -> str:
        """Versioned JSON document; :func:`spans_from_json` round-trips it."""
        spans = self.finished()
        return json.dumps(
            {
                "version": self.EXPORT_VERSION,
                "dropped": self.dropped,
                "spans": [span.to_dict() for span in spans],
            },
            sort_keys=True,
        )

    def export_chrome(self) -> str:
        """Chrome trace-event JSON (load in chrome://tracing or Perfetto)."""
        events: List[Dict[str, Any]] = []
        threads: Dict[str, int] = {}
        for span in self.finished():
            tid = threads.setdefault(span.thread, len(threads) + 1)
            args: Dict[str, Any] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attributes)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_time * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "dropped": self.dropped},
        }
        return json.dumps(document, sort_keys=True)


def spans_from_json(document: str) -> List[Span]:
    """Rebuild the span list exported by :meth:`Tracer.export_json`."""
    record = json.loads(document)
    version = record.get("version")
    if version != Tracer.EXPORT_VERSION:
        raise ValueError(f"unsupported trace export version: {version!r}")
    return [Span.from_dict(item) for item in record["spans"]]


def span_tree(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """Index spans by parent_id — the shape tests and tools walk trees with."""
    tree: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    return tree


__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "spans_from_json",
    "span_tree",
]
