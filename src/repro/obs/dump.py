"""Observability dump CLI: ``python -m repro.obs.dump``.

Enables the global instrumentation, drives the selected evaluation
workloads through a small sharded :class:`~repro.serve.ServingEngine`
(so both the compile spans and the serve-path spans fire), and writes
whatever surfaces were asked for:

* ``--metrics PATH`` — Prometheus text exposition (``-`` for stdout;
  the default when no output flag is given)
* ``--trace PATH`` — the tracer's versioned JSON export
* ``--chrome PATH`` — the same spans as a Chrome trace-event file
  (load it in ``chrome://tracing`` or Perfetto)
* ``--profile`` — per-root predicted-cost-vs-measured tables
  (:meth:`repro.api.plan.CompiledPlan.profile`), the cost-model
  validation view

Usage::

    python -m repro.obs.dump --workloads all --requests 3 \\
        --metrics metrics.prom --trace trace.json --chrome chrome.json

The CLI doubles as the observability smoke test: every emitted surface
round-trips through its own parser (:func:`repro.obs.parse_exposition`,
:func:`repro.obs.spans_from_json`) before it is written, so a zero exit
status certifies the exports are well-formed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import obs
from repro.lang import dag
from repro.serve.engine import ServingEngine
from repro.workloads import get_workload, parse_selection


def _write(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dump",
        description="Run workloads with observability enabled and dump the surfaces.",
    )
    parser.add_argument(
        "--workloads",
        default="all",
        help="comma-separated NAME or NAME:SIZE items, or 'all' (default: all)",
    )
    parser.add_argument("--size", default="S", help="default size ladder point (default: S)")
    parser.add_argument(
        "--requests",
        type=int,
        default=3,
        help="requests per workload root through the engine (default: 3)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="serving shards (default: 2)"
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the Prometheus text exposition here ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the span export as versioned JSON here ('-' for stdout)",
    )
    parser.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="write the span export as a Chrome trace-event file here",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print each root's predicted-cost-vs-measured profile table",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    try:
        selection = parse_selection(args.workloads, args.size)
    except (KeyError, ValueError) as error:
        parser.error(str(error))

    if args.metrics is None and args.trace is None and args.chrome is None:
        args.metrics = "-"

    obs.enable()
    engine = ServingEngine(shards=args.shards, supervise=False)
    profiles: List[str] = []
    try:
        for name, size in selection:
            workload = get_workload(name, size)
            inputs = workload.inputs()
            for root_name, root in workload.roots.items():
                bound = {v.name: inputs[v.name] for v in dag.variables(root)}
                for _ in range(args.requests):
                    engine.run(root, bound)
                if args.profile:
                    plan = engine.plan_for(root)
                    report = plan.profile(bound)
                    profiles.append(f"{name}:{size} {root_name}")
                    profiles.extend("  " + line for line in report.table())
        metrics_text = engine.metrics_text()
    finally:
        engine.close()

    # Validate every surface before writing it: a malformed export should
    # fail the run, not poison whatever scrapes the output next.
    obs.parse_exposition(metrics_text)
    trace_json = obs.tracer().export_json()
    obs.spans_from_json(trace_json)
    chrome_json = obs.tracer().export_chrome()
    json.loads(chrome_json)

    if args.metrics is not None:
        _write(args.metrics, metrics_text)
    if args.trace is not None:
        _write(args.trace, trace_json)
    if args.chrome is not None:
        _write(args.chrome, chrome_json)
    if args.profile:
        print("\n".join(profiles))
    return 0


if __name__ == "__main__":
    sys.exit(main())
