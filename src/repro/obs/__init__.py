"""``repro.obs`` — the observability subsystem.

Three pillars:

* **Metrics** (:mod:`repro.obs.metrics`): a registry of counters, gauges,
  and bounded-reservoir histograms with Prometheus-style text exposition.
  The optimizer, plan cache, plan store, serving, and reliability layers
  all write through the process-global registry returned by
  :func:`registry`.
* **Trace spans** (:mod:`repro.obs.trace`): structured spans with
  context propagated across shard worker threads, covering the compile
  phases (lower → saturate → extract → lift) and the serve path
  (enqueue → micro-batch → tape execute); exportable as JSON and as a
  Chrome-trace file via the global :func:`tracer`.
* **Plan profiling** (:mod:`repro.obs.profile`): a per-tape-step profiler
  attributing wall-time and intermediate cells to plan nodes, with a
  predicted-cost-vs-measured table per ``CompiledPlan`` (see
  ``CompiledPlan.profile()``).  Imported lazily — it pulls in the cost
  model and runtime, which this package root must not.

Both globals are **disabled by default**: instruments no-op on a single
attribute check and the tracer hands out a shared no-op span, so the
instrumentation threaded through the hot paths is free until a process
opts in::

    import repro.obs as obs

    obs.enable()                 # metrics + tracing
    obs.configure_logging()      # structured logging to stderr
    ...
    print(obs.registry().exposition())   # Prometheus text format
    open("trace.json", "w").write(obs.tracer().export_json())

``python -m repro.obs.dump`` packages that loop as a CLI.
"""

from __future__ import annotations

import threading

from repro.obs.log import ROOT_LOGGER, configure_logging, disable_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, parse_exposition
from repro.obs.trace import Span, SpanContext, Tracer, span_tree, spans_from_json

_lock = threading.Lock()
_REGISTRY = MetricsRegistry(namespace="repro", enabled=False)
_TRACER = Tracer(enabled=False)


def registry() -> MetricsRegistry:
    """The process-global metrics registry (disabled until :func:`enable`)."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-global tracer (disabled until :func:`enable`)."""
    return _TRACER


def enable(metrics: bool = True, tracing: bool = True) -> None:
    """Turn the global instrumentation live.

    Instruments and spans threaded through the codebase start recording
    immediately — no re-wiring, the call sites hold references to the
    same global objects.
    """
    with _lock:
        if metrics:
            _REGISTRY.enabled = True
        if tracing:
            _TRACER.enabled = True


def disable() -> None:
    """Return both globals to their no-op state (recorded data is kept)."""
    with _lock:
        _REGISTRY.enabled = False
        _TRACER.enabled = False


def is_enabled() -> bool:
    return _REGISTRY.enabled or _TRACER.enabled


def reset() -> None:
    """Disable and drop all recorded metrics and spans (test isolation)."""
    with _lock:
        _REGISTRY.enabled = False
        _TRACER.enabled = False
        _REGISTRY.reset()
        _TRACER.clear()


__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "parse_exposition",
    "Tracer",
    "Span",
    "SpanContext",
    "spans_from_json",
    "span_tree",
    "registry",
    "tracer",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "configure_logging",
    "disable_logging",
    "ROOT_LOGGER",
]
