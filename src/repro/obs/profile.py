"""Per-tape-step plan profiling: predicted cost vs. measured reality.

SPORES' extraction is driven by its sparsity-based cost model (§6 of the
paper); this module closes the loop by measuring what actually happens
when a compiled plan runs.  A :class:`TapeProfiler` hooks into
:meth:`repro.runtime.tape.TapePlan.execute` and accumulates, per tape
step, call counts, wall-clock seconds, output cells and non-zeros, and
reuse-cache hits.  :func:`build_report` joins those measurements with the
analytic per-node estimates of :class:`repro.cost.la_cost.LACostModel` —
predicted cost and predicted nnz against measured time and actual
intermediate sizes — into a :class:`ProfileReport` whose table
``CompiledPlan.explain()`` renders.

The report is how the cost model gets *validated* instead of trusted:
a node whose cost share is far from its time share, or whose predicted
nnz is far from the measured one, is exactly where the model (or a
kernel) needs attention.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cost.la_cost import LACostModel, estimate_nnz
from repro.runtime.data import MatrixValue
from repro.runtime.tape import TapePlan


class TapeProfiler:
    """Accumulates per-step timing and output statistics across runs.

    One profiler instance can observe many executions of the same tape —
    counts and seconds accumulate, output sizes keep the latest run's
    values (they are deterministic per input shape).  Thread-safe so a
    serving shard could profile in place, though the intended use is
    ``CompiledPlan.profile()`` on a caller thread.
    """

    def __init__(self, n_steps: int) -> None:
        self.n_steps = n_steps
        self.runs = 0
        self._lock = threading.Lock()
        self.calls = [0] * n_steps
        self.seconds = [0.0] * n_steps
        self.reuse_hits = [0] * n_steps
        self.cells: List[int] = [0] * n_steps
        self.nnz: List[int] = [0] * n_steps

    def record(
        self, step: int, seconds: float, value: Optional[MatrixValue], reused: bool
    ) -> None:
        with self._lock:
            self.calls[step] += 1
            self.seconds[step] += seconds
            if reused:
                self.reuse_hits[step] += 1
            if value is not None:
                self.cells[step] = value.cells
                self.nnz[step] = value.nnz

    def finish_run(self) -> None:
        with self._lock:
            self.runs += 1

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return sum(self.seconds)


@dataclass
class StepProfile:
    """One row of the predicted-vs-measured table."""

    step: int
    op: str
    calls: int
    seconds: float
    cells: int
    nnz: int
    reuse_hits: int
    predicted_cost: Optional[float]
    predicted_nnz: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "op": self.op,
            "calls": self.calls,
            "seconds": self.seconds,
            "cells": self.cells,
            "nnz": self.nnz,
            "reuse_hits": self.reuse_hits,
            "predicted_cost": self.predicted_cost,
            "predicted_nnz": self.predicted_nnz,
        }


@dataclass
class ProfileReport:
    """Joined per-node predicted-cost-vs-measured profile of one plan."""

    steps: List[StepProfile]
    runs: int
    total_seconds: float
    predicted_total: float
    measured_cells: int = field(init=False)

    def __post_init__(self) -> None:
        self.measured_cells = sum(step.cells for step in self.steps)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "total_seconds": self.total_seconds,
            "predicted_total": self.predicted_total,
            "measured_cells": self.measured_cells,
            "steps": [step.to_dict() for step in self.steps],
        }

    def table(self) -> List[str]:
        """The predicted-vs-measured table as formatted lines.

        Shares: each step's fraction of the plan's total predicted cost
        next to its fraction of measured wall time — the two columns a
        correct cost model keeps roughly aligned.
        """
        header = (
            f"{'step':>4}  {'op':<16} {'calls':>5}  {'time':>9}  {'time%':>6}  "
            f"{'cost%':>6}  {'pred cost':>10}  {'pred nnz':>9}  {'nnz':>9}  {'cells':>9}"
        )
        lines = [header, "-" * len(header)]
        time_total = self.total_seconds or 1.0
        cost_total = self.predicted_total or 1.0
        for step in self.steps:
            cost_share = (
                f"{100.0 * step.predicted_cost / cost_total:6.1f}"
                if step.predicted_cost is not None
                else "     -"
            )
            predicted_cost = (
                f"{step.predicted_cost:10.3g}" if step.predicted_cost is not None else f"{'-':>10}"
            )
            predicted_nnz = (
                f"{step.predicted_nnz:9.3g}" if step.predicted_nnz is not None else f"{'-':>9}"
            )
            lines.append(
                f"{step.step:>4}  {step.op:<16} {step.calls:>5}  "
                f"{step.seconds * 1e3:8.3f}ms  {100.0 * step.seconds / time_total:6.1f}  "
                f"{cost_share}  {predicted_cost}  {predicted_nnz}  "
                f"{step.nnz:>9}  {step.cells:>9}"
            )
        lines.append(
            f"total: {self.total_seconds * 1e3:.3f}ms over {self.runs} run(s), "
            f"predicted cost {self.predicted_total:.3g}, "
            f"measured intermediate cells {self.measured_cells}"
        )
        return lines


def build_report(
    tape: TapePlan,
    profiler: TapeProfiler,
    slot_plan: Any,
    cost_model: Optional[LACostModel] = None,
) -> ProfileReport:
    """Join a profiler's measurements with the cost model's estimates.

    ``slot_plan`` is the slot-space LA root the tape was compiled from;
    the tape remembers which plan node each step materializes, and the
    cost model's ``per_node`` map is keyed by those same (structurally
    hashed) nodes, so the join is a dictionary lookup.  Synthesized
    constant steps have no plan node and show ``-`` in the cost columns.

    Fused plans report *regions*: ``step_group`` lists every plan node a
    region materializes, so a fused row's predicted cost is the sum over
    its member nodes while predicted nnz comes from the region root —
    the profile stays truthful about what the fused step really covers.
    """
    model = cost_model or LACostModel()
    report = model.cost(slot_plan)
    steps: List[StepProfile] = []
    group_of = getattr(tape, "step_group", None)
    for index in range(len(tape)):
        node = tape.step_node(index)
        group = tuple(group_of(index)) if group_of is not None else ()
        if not group and node is not None:
            group = (node,)
        predicted_cost: Optional[float] = None
        predicted_nnz: Optional[float] = None
        if group:
            known = [report.per_node[n] for n in group if n in report.per_node]
            if known:
                predicted_cost = sum(known)
            predicted_nnz = estimate_nnz(group[-1])
        steps.append(
            StepProfile(
                step=index,
                op=tape.step_label(index),
                calls=profiler.calls[index],
                seconds=profiler.seconds[index],
                cells=profiler.cells[index],
                nnz=profiler.nnz[index],
                reuse_hits=profiler.reuse_hits[index],
                predicted_cost=predicted_cost,
                predicted_nnz=predicted_nnz,
            )
        )
    return ProfileReport(
        steps=steps,
        runs=profiler.runs,
        total_seconds=profiler.total_seconds,
        predicted_total=report.total,
    )


__all__ = ["TapeProfiler", "StepProfile", "ProfileReport", "build_report"]
