"""Package-wide structured logging configuration.

Every module in ``repro`` logs through ``logging.getLogger(__name__)``,
which all roll up to the ``"repro"`` logger.  The package attaches a
``NullHandler`` to that root at import (library etiquette: silent unless
the application opts in), and :func:`configure_logging` is the opt-in —
one call attaches a stream handler with a structured single-line format
carrying the logger name, level, and message.

Events routed through this logger include supervisor shard restarts,
circuit-breaker transitions, degraded-mode compile fallbacks, injected
faults, store read/write demotions, and request sheds — the previously
silent reliability surface of PR 6.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

#: the package root logger every repro module rolls up to
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
_DATE_FORMAT = "%Y-%m-%dT%H:%M:%S"

#: marker attribute so repeated configure calls replace our handler
#: instead of stacking duplicates
_HANDLER_FLAG = "_repro_obs_handler"


def configure_logging(
    level: Union[int, str] = logging.INFO,
    stream: Optional[IO[str]] = None,
    fmt: str = _FORMAT,
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` logger and return it.

    Idempotent: calling again replaces the handler installed by the
    previous call (adjusting level or stream) rather than duplicating
    output.  Pass ``stream=None`` for stderr.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def disable_logging() -> None:
    """Remove the handler installed by :func:`configure_logging`, if any."""
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)


__all__ = ["configure_logging", "disable_logging", "ROOT_LOGGER"]
