"""The metrics registry: counters, gauges, and bounded-reservoir histograms.

One :class:`MetricsRegistry` is a namespace of named instruments.  The
package keeps a process-global registry (``repro.obs.registry()``) that the
optimizer, cache, store, serving and reliability layers write their
counters through; it is **disabled by default** — a disabled registry's
instruments short-circuit on a single attribute check, so the
instrumentation compiled into the hot paths costs one branch until someone
opts in with :func:`repro.obs.enable`.  Components that *replace* their
hand-rolled bookkeeping with instruments (the serving engine's latency
accounting) construct their own always-enabled registry instead.

Design points:

* **Instruments are get-or-create.**  ``registry.counter("x_total")``
  returns the same object every time, so call sites can resolve an
  instrument once at import and increment forever after — no per-call
  dictionary probe on the hot path.
* **Labels** are part of the instrument identity:
  ``counter("faults_total", site="store.read")`` and the same name with a
  different ``site`` are two series, exactly as in Prometheus.
* **Histograms are bounded reservoirs**, not buckets: a ``deque(maxlen=N)``
  of recent observations plus monotonic count/sum/min/max.  Quantiles are
  nearest-rank over the reservoir — the same estimator the serving engine
  previously applied to its per-shard latency deques, now in one shared
  instrument instead of a list copy per ``stats()`` call.
* **Exposition** renders the whole registry in the Prometheus text format
  (``# TYPE`` comments, ``name{label="v"} value`` samples); histograms
  expose ``_count``/``_sum`` plus quantile gauges.

Everything is thread-safe: instruments take a small per-instrument lock,
the registry takes its own for instrument creation and iteration.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Dict, List, Tuple

#: label sets are canonicalized to sorted tuples so kwarg order never
#: creates duplicate series
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared identity/locking plumbing of every instrument kind."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labels: LabelKey) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def samples(self) -> List[Tuple[str, LabelKey, float]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labels: LabelKey) -> None:
        super().__init__(registry, name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [(self.name, self.labels, self.value)]

    def clear(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(_Instrument):
    """A value that can go up and down (queue depths, cache sizes)."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labels: LabelKey) -> None:
        super().__init__(registry, name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [(self.name, self.labels, self.value)]

    def clear(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Instrument):
    """Bounded-reservoir distribution: recent window + monotonic totals.

    ``observe`` appends to a ``deque(maxlen=reservoir)`` and updates
    count/sum/min/max; :meth:`quantile` is the nearest-rank estimate over
    the reservoir (recent window), which is what a serving tier wants from
    p50/p95 — old latencies age out with the traffic that produced them.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labels: LabelKey,
        reservoir: int = 4096,
    ) -> None:
        super().__init__(registry, name, help, labels)
        if reservoir < 1:
            raise ValueError("histogram reservoir must be >= 1")
        self._reservoir: "deque[float]" = deque(maxlen=reservoir)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        with self._lock:
            self._reservoir.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed seconds of its body."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the bounded reservoir (0.0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            window = sorted(self._reservoir)
        if not window:
            return 0.0
        rank = min(len(window) - 1, max(0, math.ceil(q * len(window)) - 1))
        return window[rank]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
            window = sorted(self._reservoir)
        record: Dict[str, float] = {
            "count": float(count),
            "sum": total,
            "mean": total / count if count else 0.0,
        }
        if window:
            for q in (0.5, 0.95, 0.99):
                rank = min(len(window) - 1, max(0, math.ceil(q * len(window)) - 1))
                record[f"p{int(q * 100)}"] = window[rank]
            record["min"] = window[0]
            record["max"] = window[-1]
        return record

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        snap = self.snapshot()
        out = [
            (f"{self.name}_count", self.labels, snap["count"]),
            (f"{self.name}_sum", self.labels, snap["sum"]),
        ]
        for q in ("0.5", "0.95", "0.99"):
            key = f"p{int(float(q) * 100)}"
            if key in snap:
                out.append((self.name, self.labels + (("quantile", q),), snap[key]))
        return out

    def clear(self) -> None:
        with self._lock:
            self._reservoir.clear()
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """A namespace of named instruments with Prometheus-style exposition."""

    def __init__(self, namespace: str = "repro", enabled: bool = True) -> None:
        self.namespace = namespace
        #: the one switch every instrument of this registry checks; flipping
        #: it is how ``repro.obs.enable()`` turns a process's no-op
        #: instrumentation live without re-threading anything
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: "Dict[Tuple[str, LabelKey], _Instrument]" = {}
        #: name -> (kind, help); one TYPE line per name however many series
        self._families: Dict[str, Tuple[str, str]] = {}

    # -- instrument creation ---------------------------------------------------
    def _full_name(self, name: str) -> str:
        if self.namespace and not name.startswith(self.namespace + "_"):
            return f"{self.namespace}_{name}"
        return name

    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        full = self._full_name(name)
        key = (full, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(self, full, help, key[1], **kwargs)
                self._instruments[key] = instrument
                self._families.setdefault(full, (cls.kind, help))
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"instrument {full!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", reservoir: int = 4096, **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, reservoir=reservoir)

    # -- introspection ---------------------------------------------------------
    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def exposition(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: List[str] = []
        families: Dict[str, List[_Instrument]] = {}
        for instrument in self.instruments():
            families.setdefault(instrument.name, []).append(instrument)
        for name in sorted(families):
            kind, help = self._families.get(name, ("untyped", ""))
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for instrument in families[name]:
                for sample_name, labels, value in instrument.samples():
                    lines.append(
                        f"{sample_name}{_render_labels(labels)} {_render_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump: one entry per series, histograms expanded."""
        record: Dict[str, object] = {}
        for instrument in self.instruments():
            key = instrument.name + _render_labels(instrument.labels)
            if isinstance(instrument, Histogram):
                record[key] = instrument.snapshot()
            else:
                record[key] = instrument.value  # type: ignore[union-attr]
        return record

    def reset(self) -> None:
        """Zero every instrument's recorded data, in place.

        Instruments stay registered: call sites across the codebase resolve
        their counters once at import time and hold the objects forever, so
        a reset must clear values without orphaning those references —
        dropping the instruments would leave the callers incrementing
        series no exposition ever renders again.
        """
        for instrument in self.instruments():
            instrument.clear()


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse Prometheus text exposition back into ``{series: value}``.

    A deliberately small parser for smoke tests and round-trip checks —
    it accepts exactly what :meth:`MetricsRegistry.exposition` emits
    (comments, ``name{labels} value`` lines) and raises ``ValueError`` on
    anything malformed, which is what makes it useful as a validator.
    """
    import re

    sample = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(-?(?:[0-9.eE+-]+|\+Inf|-Inf|NaN))$"
    )
    out: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = sample.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        name, labels, value = match.groups()
        if value == "+Inf":
            parsed = math.inf
        elif value == "-Inf":
            parsed = -math.inf
        elif value == "NaN":
            parsed = math.nan
        else:
            parsed = float(value)
        out[name + (labels or "")] = parsed
    return out


__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "parse_exposition",
]
